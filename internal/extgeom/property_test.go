package extgeom

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// ---- Exact integer oracle for segment intersection -------------------
//
// Segments with small integer coordinates admit an exact intersection
// decision in int64 arithmetic (orientations are products of values
// ≤ 2·coord², far from overflow). The float implementation must agree on
// every such input, including the boundary cases the paper's class-based
// partitioning leans on: collinear touching segments, vertex-on-edge
// contact, shared endpoints, degenerate (zero-length) segments.

type ipt struct{ x, y int64 }

func iorient(a, b, c ipt) int64 {
	return (b.x-a.x)*(c.y-a.y) - (b.y-a.y)*(c.x-a.x)
}

func ion(a, b, p ipt) bool { // p collinear with ab: is p within the box?
	return min64(a.x, b.x) <= p.x && p.x <= max64(a.x, b.x) &&
		min64(a.y, b.y) <= p.y && p.y <= max64(a.y, b.y)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func intersectOracle(a1, a2, b1, b2 ipt) bool {
	d1 := iorient(b1, b2, a1)
	d2 := iorient(b1, b2, a2)
	d3 := iorient(a1, a2, b1)
	d4 := iorient(a1, a2, b2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && ion(b1, b2, a1)) ||
		(d2 == 0 && ion(b1, b2, a2)) ||
		(d3 == 0 && ion(a1, a2, b1)) ||
		(d4 == 0 && ion(a1, a2, b2))
}

func TestSegmentsIntersectMatchesExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	coord := func() int64 { return int64(rng.Intn(13)) - 6 }
	for i := 0; i < 200_000; i++ {
		a1 := ipt{coord(), coord()}
		a2 := ipt{coord(), coord()}
		b1 := ipt{coord(), coord()}
		b2 := ipt{coord(), coord()}
		want := intersectOracle(a1, a2, b1, b2)
		got := SegmentsIntersect(
			Segment{A: geom.Point{X: float64(a1.x), Y: float64(a1.y)}, B: geom.Point{X: float64(a2.x), Y: float64(a2.y)}},
			Segment{A: geom.Point{X: float64(b1.x), Y: float64(b1.y)}, B: geom.Point{X: float64(b2.x), Y: float64(b2.y)}},
		)
		if got != want {
			t.Fatalf("SegmentsIntersect(%v-%v, %v-%v) = %v, exact oracle says %v", a1, a2, b1, b2, got, want)
		}
	}
}

func TestSegmentsIntersectBoundaryCases(t *testing.T) {
	seg := func(ax, ay, bx, by float64) Segment {
		return Segment{A: geom.Point{X: ax, Y: ay}, B: geom.Point{X: bx, Y: by}}
	}
	cases := []struct {
		name string
		a, b Segment
		want bool
	}{
		{"collinear overlapping", seg(0, 0, 10, 0), seg(2, 0, 5, 0), true},
		{"collinear touching at endpoint", seg(0, 0, 1, 0), seg(1, 0, 2, 0), true},
		{"collinear disjoint", seg(0, 0, 1, 0), seg(2, 0, 3, 0), false},
		{"vertex on edge", seg(0, 0, 4, 0), seg(2, 0, 2, 5), true},
		{"shared endpoint only", seg(0, 0, 1, 1), seg(1, 1, 2, 0), true},
		{"degenerate on segment", seg(0, 0, 4, 4), seg(2, 2, 2, 2), true},
		{"degenerate off segment", seg(0, 0, 4, 4), seg(2, 3, 2, 3), false},
		{"both degenerate equal", seg(1, 1, 1, 1), seg(1, 1, 1, 1), true},
		{"both degenerate distinct", seg(1, 1, 1, 1), seg(2, 2, 2, 2), false},
		{"proper cross", seg(0, 0, 2, 2), seg(0, 2, 2, 0), true},
		{"parallel apart", seg(0, 0, 4, 0), seg(0, 1, 4, 1), false},
	}
	for _, c := range cases {
		if got := SegmentsIntersect(c.a, c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// ---- Dense-sampling brute force for distances ------------------------

// samplePoints returns points densely sampled along the object's
// boundary (a point object yields its single vertex).
func samplePoints(o *Object, perSegment int) []geom.Point {
	out := []geom.Point{}
	out = append(out, o.Verts...)
	o.segments(func(s Segment) {
		for i := 1; i < perSegment; i++ {
			out = append(out, interp(s, float64(i)/float64(perSegment)))
		}
	})
	return out
}

func sqDistSampled(a, b *Object, perSegment int) float64 {
	pa := samplePoints(a, perSegment)
	pb := samplePoints(b, perSegment)
	best := math.Inf(1)
	for _, p := range pa {
		for _, q := range pb {
			if d := p.SqDist(q); d < best {
				best = d
			}
		}
	}
	return best
}

func TestSqDistPointSegmentVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const samples = 4000
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10}
		s := Segment{
			A: geom.Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10},
			B: geom.Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10},
		}
		got := SqDistPointSegment(p, s)
		best := math.Inf(1)
		for k := 0; k <= samples; k++ {
			q := interp(s, float64(k)/samples)
			if d := p.SqDist(q); d < best {
				best = d
			}
		}
		// The exact distance lower-bounds every sample, and the densest
		// sample comes within one step of the true minimum.
		if got > best+1e-9 {
			t.Fatalf("SqDistPointSegment=%v exceeds sampled minimum %v (p=%v s=%v)", got, best, p, s)
		}
		if best-got > 1e-4 {
			t.Fatalf("SqDistPointSegment=%v far below sampled minimum %v (p=%v s=%v)", got, best, p, s)
		}
	}
}

// randomSimplePolygon builds a star-shaped (hence simple) polygon around
// a center: vertices at sorted angles with varying radii.
func randomSimplePolygon(rng *rand.Rand, id int64, cx, cy, rmax float64) Object {
	n := 3 + rng.Intn(6)
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	for i := 1; i < n; i++ { // insertion sort
		for j := i; j > 0 && angles[j] < angles[j-1]; j-- {
			angles[j], angles[j-1] = angles[j-1], angles[j]
		}
	}
	verts := make([]geom.Point, n)
	for i, a := range angles {
		r := rmax * (0.3 + 0.7*rng.Float64())
		verts[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return NewPolygon(id, verts)
}

func randomObject(rng *rand.Rand, id int64, cx, cy, rmax float64) Object {
	switch rng.Intn(3) {
	case 0:
		return NewPoint(id, geom.Point{X: cx, Y: cy})
	case 1:
		n := 2 + rng.Intn(4)
		verts := make([]geom.Point, n)
		for i := range verts {
			verts[i] = geom.Point{X: cx + (rng.Float64()*2-1)*rmax, Y: cy + (rng.Float64()*2-1)*rmax}
		}
		return NewPolyline(id, verts)
	default:
		return randomSimplePolygon(rng, id, cx, cy, rmax)
	}
}

func TestSqDistObjectsVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomObject(rng, 1, rng.Float64()*10, rng.Float64()*10, 1+rng.Float64()*2)
		b := randomObject(rng, 2, rng.Float64()*10, rng.Float64()*10, 1+rng.Float64()*2)
		got := SqDist(&a, &b)
		sampled := sqDistSampled(&a, &b, 60)
		// Exact distance never exceeds any boundary sample distance.
		if got > sampled+1e-9 {
			t.Fatalf("case %d: SqDist=%v exceeds sampled boundary distance %v\na=%+v\nb=%+v", i, got, sampled, a, b)
		}
		// When the exact distance is zero, the objects overlap: either
		// boundaries come close, or one contains the other's sample.
		if got == 0 {
			continue
		}
		// Disjoint objects: the minimum boundary distance is the object
		// distance, so dense sampling must come close to it.
		if sampled-got > 0.02*math.Max(1, sampled) {
			t.Fatalf("case %d: SqDist=%v far below sampled %v\na=%+v\nb=%+v", i, got, sampled, a, b)
		}
	}
}

func TestContainsObjectVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		a := randomSimplePolygon(rng, 1, 5, 5, 4)
		b := randomObject(rng, 2, 4+rng.Float64()*2, 4+rng.Float64()*2, 0.2+rng.Float64()*3)
		got := ContainsObject(&a, &b)
		// Sample b densely; containment requires every sample inside a.
		allIn := true
		for _, p := range samplePoints(&b, 50) {
			if !a.ContainsPoint(p) {
				allIn = false
				break
			}
		}
		if got && !allIn {
			t.Fatalf("case %d: ContainsObject=true but a sampled point of b is outside a\na=%+v\nb=%+v", i, a, b)
		}
		if !got && allIn {
			// ContainsObject may only reject a fully-sampled-inside b
			// when b grazes the boundary (samples on the edge): verify
			// there is at least a near-boundary sample before failing.
			grazing := false
			for _, p := range samplePoints(&b, 50) {
				d := math.Inf(1)
				a.segments(func(s Segment) {
					if v := SqDistPointSegment(p, s); v < d {
						d = v
					}
				})
				if d < 1e-12 {
					grazing = true
					break
				}
			}
			if !grazing {
				t.Fatalf("case %d: ContainsObject=false but every sampled point of b is strictly inside a\na=%+v\nb=%+v", i, a, b)
			}
		}
	}
}

func TestContainsObjectCases(t *testing.T) {
	square := NewPolygon(1, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}})
	// An L-shaped (non-convex) polygon: the notch occupies the top-right.
	ell := NewPolygon(2, []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 10}, {X: 0, Y: 10},
	})
	cases := []struct {
		name string
		a, b Object
		want bool
	}{
		{"inner square", square, NewPolygon(3, []geom.Point{{X: 2, Y: 2}, {X: 8, Y: 2}, {X: 8, Y: 8}, {X: 2, Y: 8}}), true},
		{"touching edge from inside", square, NewPolygon(3, []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 5, Y: 5}}), true},
		{"sticking out", square, NewPolygon(3, []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 15, Y: 8}}), false},
		{"point inside", square, NewPoint(3, geom.Point{X: 5, Y: 5}), true},
		{"point on boundary", square, NewPoint(3, geom.Point{X: 0, Y: 5}), true},
		{"point outside", square, NewPoint(3, geom.Point{X: -1, Y: 5}), false},
		{"polyline inside", square, NewPolyline(3, []geom.Point{{X: 1, Y: 1}, {X: 9, Y: 9}}), true},
		{"polyline crossing out and back", square, NewPolyline(3, []geom.Point{{X: 5, Y: 5}, {X: 12, Y: 5}, {X: 5, Y: 6}}), false},
		// Vertices inside the L, but the connecting edge cuts across the
		// notch (outside the polygon) — the case vertex checks alone miss.
		{"edge across the notch", ell, NewPolyline(3, []geom.Point{{X: 9, Y: 4}, {X: 4, Y: 9}}), false},
		{"edge along boundary", square, NewPolyline(3, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}), true},
		{"identical polygon", square, NewPolygon(3, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}), true},
		{"non-polygon container", NewPolyline(4, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}), NewPoint(3, geom.Point{X: 0, Y: 0}), false},
		{"point contains equal point", NewPoint(5, geom.Point{X: 1, Y: 2}), NewPoint(6, geom.Point{X: 1, Y: 2}), true},
	}
	for _, c := range cases {
		if got := ContainsObject(&c.a, &c.b); got != c.want {
			t.Errorf("%s: ContainsObject = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIntersectsObjectsCases(t *testing.T) {
	square := NewPolygon(1, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}})
	cases := []struct {
		name string
		a, b Object
		want bool
	}{
		{"overlap", square, NewPolygon(2, []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 15, Y: 15}, {X: 5, Y: 15}}), true},
		{"contained", square, NewPolygon(2, []geom.Point{{X: 2, Y: 2}, {X: 3, Y: 2}, {X: 3, Y: 3}}), true},
		{"touching corner", square, NewPolygon(2, []geom.Point{{X: 10, Y: 10}, {X: 12, Y: 10}, {X: 12, Y: 12}}), true},
		{"disjoint", square, NewPolygon(2, []geom.Point{{X: 20, Y: 20}, {X: 22, Y: 20}, {X: 22, Y: 22}}), false},
		{"mbr overlaps but objects do not", NewPolyline(3, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}), NewPolyline(4, []geom.Point{{X: 9, Y: 0}, {X: 10, Y: 1}}), false},
		{"point in polygon", square, NewPoint(5, geom.Point{X: 1, Y: 1}), true},
	}
	for _, c := range cases {
		if got := IntersectsObjects(&c.a, &c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := IntersectsObjects(&c.b, &c.a); got != c.want {
			t.Errorf("%s (flipped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestObjectWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		o := randomObject(rng, int64(i), rng.Float64()*100, rng.Float64()*100, 1+rng.Float64()*5)
		enc := AppendObject(nil, &o)
		if len(enc) != ObjectWireSize(&o) {
			t.Fatalf("encoded %d bytes, ObjectWireSize says %d", len(enc), ObjectWireSize(&o))
		}
		dec, err := DecodeObject(o.ID, enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Kind != o.Kind || dec.ID != o.ID || len(dec.Verts) != len(o.Verts) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", dec, o)
		}
		for j := range o.Verts {
			if dec.Verts[j] != o.Verts[j] {
				t.Fatalf("vertex %d mismatch", j)
			}
		}
		wantB := o.Bounds()
		gotB, err := DecodeObjectBounds(enc)
		if err != nil {
			t.Fatalf("bounds: %v", err)
		}
		if gotB != wantB {
			t.Fatalf("bounds mismatch: %v vs %v", gotB, wantB)
		}
	}
	// Truncated and hostile payloads error instead of panicking.
	o := NewPolyline(1, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}})
	enc := AppendObject(nil, &o)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeObject(1, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeObject(1, []byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}
