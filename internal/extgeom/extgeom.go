// Package extgeom provides the geometry of spatial objects with extent —
// line segments, polylines and simple polygons — and the exact distance
// computations the extended ε-distance join refines candidates with.
// It implements the paper's first future-work item ("extend the
// abstraction of the graph of agreements for other spatial objects, such
// as polygons and polylines"); the join-side construction lives in
// internal/extjoin.
package extgeom

import (
	"fmt"
	"math"

	"spatialjoin/internal/geom"
)

// Segment is a line segment between two endpoints.
type Segment struct {
	A, B geom.Point
}

// SqDistPointSegment returns the squared distance from p to the segment.
func SqDistPointSegment(p geom.Point, s Segment) float64 {
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	len2 := dx*dx + dy*dy
	if len2 == 0 {
		return p.SqDist(s.A)
	}
	t := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / len2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.SqDist(geom.Point{X: s.A.X + t*dx, Y: s.A.Y + t*dy})
}

// SegmentsIntersect reports whether two segments share at least one point.
func SegmentsIntersect(a, b Segment) bool {
	d1 := orient(b.A, b.B, a.A)
	d2 := orient(b.A, b.B, a.B)
	d3 := orient(a.A, a.B, b.A)
	d4 := orient(a.A, a.B, b.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(b, a.A)) ||
		(d2 == 0 && onSegment(b, a.B)) ||
		(d3 == 0 && onSegment(a, b.A)) ||
		(d4 == 0 && onSegment(a, b.B))
}

// orient returns the signed area orientation of the triangle (a, b, c).
func orient(a, b, c geom.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether p (already known collinear with s) lies on s.
func onSegment(s Segment, p geom.Point) bool {
	return math.Min(s.A.X, s.B.X) <= p.X && p.X <= math.Max(s.A.X, s.B.X) &&
		math.Min(s.A.Y, s.B.Y) <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)
}

// SqDistSegments returns the squared distance between two segments
// (zero when they intersect).
func SqDistSegments(a, b Segment) float64 {
	if SegmentsIntersect(a, b) {
		return 0
	}
	d := SqDistPointSegment(a.A, b)
	if v := SqDistPointSegment(a.B, b); v < d {
		d = v
	}
	if v := SqDistPointSegment(b.A, a); v < d {
		d = v
	}
	if v := SqDistPointSegment(b.B, a); v < d {
		d = v
	}
	return d
}

// Kind discriminates object geometries.
type Kind uint8

const (
	// KindPoint is a degenerate single-vertex object.
	KindPoint Kind = iota
	// KindPolyline is an open chain of segments.
	KindPolyline
	// KindPolygon is a closed simple ring (first vertex implicitly
	// connects to the last); its interior counts as part of the object.
	KindPolygon
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"point", "polyline", "polygon"}[k]
}

// Object is a spatial object with extent: an identified point, polyline
// or simple polygon.
type Object struct {
	ID    int64
	Kind  Kind
	Verts []geom.Point
}

// Validate reports whether the object is structurally sound.
func (o *Object) Validate() error {
	switch o.Kind {
	case KindPoint:
		if len(o.Verts) != 1 {
			return fmt.Errorf("extgeom: point object needs exactly 1 vertex, has %d", len(o.Verts))
		}
	case KindPolyline:
		if len(o.Verts) < 2 {
			return fmt.Errorf("extgeom: polyline needs at least 2 vertices, has %d", len(o.Verts))
		}
	case KindPolygon:
		if len(o.Verts) < 3 {
			return fmt.Errorf("extgeom: polygon needs at least 3 vertices, has %d", len(o.Verts))
		}
	default:
		return fmt.Errorf("extgeom: unknown kind %d", o.Kind)
	}
	return nil
}

// Bounds returns the object's minimum bounding rectangle.
func (o *Object) Bounds() geom.Rect {
	return geom.BoundingRect(o.Verts)
}

// Center returns the MBR centre, the object's grid reference point.
func (o *Object) Center() geom.Point {
	return o.Bounds().Center()
}

// HalfDiag returns half the MBR diagonal: the maximum distance from the
// centre to any point of the object.
func (o *Object) HalfDiag() float64 {
	b := o.Bounds()
	return math.Sqrt(b.Width()*b.Width()+b.Height()*b.Height()) / 2
}

// segments visits the object's segments. A point yields none; a polygon
// includes the closing edge.
func (o *Object) segments(visit func(Segment)) {
	n := len(o.Verts)
	for i := 0; i+1 < n; i++ {
		visit(Segment{A: o.Verts[i], B: o.Verts[i+1]})
	}
	if o.Kind == KindPolygon && n >= 3 {
		visit(Segment{A: o.Verts[n-1], B: o.Verts[0]})
	}
}

// ContainsPoint reports whether p lies inside or on the boundary of a
// polygon object (ray casting with boundary inclusion). Non-polygons
// never contain points.
func (o *Object) ContainsPoint(p geom.Point) bool {
	if o.Kind != KindPolygon {
		return false
	}
	onBoundary := false
	o.segments(func(s Segment) {
		if SqDistPointSegment(p, s) == 0 {
			onBoundary = true
		}
	})
	if onBoundary {
		return true
	}
	inside := false
	n := len(o.Verts)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := o.Verts[i], o.Verts[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) &&
			p.X < (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y)+vi.X {
			inside = !inside
		}
	}
	return inside
}

// SqDist returns the squared distance between two objects: zero when they
// intersect or one contains the other, otherwise the squared minimum
// boundary distance.
func SqDist(a, b *Object) float64 {
	// Point-point fast path.
	if a.Kind == KindPoint && b.Kind == KindPoint {
		return a.Verts[0].SqDist(b.Verts[0])
	}
	// Containment: a polygon swallows any vertex inside it.
	if a.Kind == KindPolygon && a.ContainsPoint(b.Verts[0]) {
		return 0
	}
	if b.Kind == KindPolygon && b.ContainsPoint(a.Verts[0]) {
		return 0
	}
	best := math.Inf(1)
	aSegs := collectSegments(a)
	bSegs := collectSegments(b)
	switch {
	case len(aSegs) == 0 && len(bSegs) == 0:
		return a.Verts[0].SqDist(b.Verts[0])
	case len(aSegs) == 0:
		for _, s := range bSegs {
			if d := SqDistPointSegment(a.Verts[0], s); d < best {
				best = d
			}
		}
	case len(bSegs) == 0:
		for _, s := range aSegs {
			if d := SqDistPointSegment(b.Verts[0], s); d < best {
				best = d
			}
		}
	default:
		for _, sa := range aSegs {
			for _, sb := range bSegs {
				if d := SqDistSegments(sa, sb); d < best {
					best = d
					if best == 0 {
						return 0
					}
				}
			}
		}
	}
	return best
}

// Dist returns the distance between two objects.
func Dist(a, b *Object) float64 { return math.Sqrt(SqDist(a, b)) }

// WithinDist reports whether the two objects are within eps of each other.
func WithinDist(a, b *Object, eps float64) bool { return SqDist(a, b) <= eps*eps }

func collectSegments(o *Object) []Segment {
	var out []Segment
	o.segments(func(s Segment) { out = append(out, s) })
	return out
}

// NewPoint builds a point object.
func NewPoint(id int64, p geom.Point) Object {
	return Object{ID: id, Kind: KindPoint, Verts: []geom.Point{p}}
}

// NewPolyline builds a polyline object from its vertex chain.
func NewPolyline(id int64, verts []geom.Point) Object {
	return Object{ID: id, Kind: KindPolyline, Verts: verts}
}

// NewPolygon builds a polygon object from its ring (unclosed form: the
// last vertex connects back to the first implicitly).
func NewPolygon(id int64, ring []geom.Point) Object {
	return Object{ID: id, Kind: KindPolygon, Verts: ring}
}
