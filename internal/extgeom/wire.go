package extgeom

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialjoin/internal/geom"
)

// Wire encoding of one object's geometry, used as the tuple payload the
// non-point join ships through the shuffle (and the durable store's
// colfiles persist):
//
//	kind u8 | nverts u32 | nverts × (x f64 | y f64)
//
// Little-endian, self-delimiting. The MBR is not stored: it is derivable
// in one pass, and DecodeObjectBounds performs exactly that pass without
// materialising the vertex slice (the map phase's assignment only needs
// the MBR).

// wireHeader is the fixed prefix size of an encoded object.
const wireHeader = 1 + 4

// maxWireVerts caps the vertex count a decoder will accept — far above
// any real geometry, low enough that a hostile header cannot force a
// huge allocation.
const maxWireVerts = 1 << 24

// ObjectWireSize returns the number of bytes AppendObject writes for o.
func ObjectWireSize(o *Object) int { return wireHeader + 16*len(o.Verts) }

// AppendObject appends the wire encoding of o's geometry to dst. The
// object id travels separately (it is the tuple id).
func AppendObject(dst []byte, o *Object) []byte {
	dst = append(dst, byte(o.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(o.Verts)))
	for _, v := range o.Verts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Y))
	}
	return dst
}

// DecodeObject decodes a geometry payload into an object with the given
// id.
func DecodeObject(id int64, b []byte) (Object, error) {
	kind, n, err := decodeHeader(b)
	if err != nil {
		return Object{}, err
	}
	o := Object{ID: id, Kind: kind, Verts: make([]geom.Point, n)}
	for i := 0; i < n; i++ {
		o.Verts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[wireHeader+16*i:]))
		o.Verts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[wireHeader+16*i+8:]))
	}
	return o, o.Validate()
}

// DecodeObjectBounds computes the MBR of an encoded geometry without
// building the vertex slice.
func DecodeObjectBounds(b []byte) (geom.Rect, error) {
	_, n, err := decodeHeader(b)
	if err != nil {
		return geom.Rect{}, err
	}
	r := geom.EmptyRect()
	for i := 0; i < n; i++ {
		r = r.ExtendPoint(geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(b[wireHeader+16*i:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(b[wireHeader+16*i+8:])),
		})
	}
	return r, nil
}

func decodeHeader(b []byte) (Kind, int, error) {
	if len(b) < wireHeader {
		return 0, 0, fmt.Errorf("extgeom: decode: %d bytes, need at least %d", len(b), wireHeader)
	}
	kind := Kind(b[0])
	if kind > KindPolygon {
		return 0, 0, fmt.Errorf("extgeom: decode: unknown kind %d", b[0])
	}
	n := int(binary.LittleEndian.Uint32(b[1:]))
	if n > maxWireVerts {
		return 0, 0, fmt.Errorf("extgeom: decode: %d vertices exceeds cap %d", n, maxWireVerts)
	}
	if len(b) < wireHeader+16*n {
		return 0, 0, fmt.Errorf("extgeom: decode: %d vertices need %d bytes, have %d", n, wireHeader+16*n, len(b))
	}
	return kind, n, nil
}
