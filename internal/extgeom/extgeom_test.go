package extgeom

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSqDistPointSegment(t *testing.T) {
	s := Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 10, Y: 0}}
	tests := []struct {
		p    geom.Point
		want float64 // distance, not squared
	}{
		{geom.Point{X: 5, Y: 0}, 0},   // on the segment
		{geom.Point{X: 5, Y: 3}, 3},   // above the middle
		{geom.Point{X: -4, Y: 3}, 5},  // beyond A
		{geom.Point{X: 13, Y: 4}, 5},  // beyond B
		{geom.Point{X: 0, Y: 0}, 0},   // endpoint
		{geom.Point{X: 10, Y: -2}, 2}, // below B
	}
	for _, tc := range tests {
		if got := math.Sqrt(SqDistPointSegment(tc.p, s)); !almost(got, tc.want) {
			t.Errorf("dist(%v, seg) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestDegenerateSegment(t *testing.T) {
	s := Segment{A: geom.Point{X: 3, Y: 4}, B: geom.Point{X: 3, Y: 4}}
	if got := math.Sqrt(SqDistPointSegment(geom.Point{X: 0, Y: 0}, s)); !almost(got, 5) {
		t.Errorf("degenerate segment distance = %v, want 5", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Segment
		want bool
	}{
		{"crossing", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 10}},
			Segment{geom.Point{X: 0, Y: 10}, geom.Point{X: 10, Y: 0}}, true},
		{"parallel apart", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}},
			Segment{geom.Point{X: 0, Y: 1}, geom.Point{X: 10, Y: 1}}, false},
		{"touching endpoint", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 5}},
			Segment{geom.Point{X: 5, Y: 5}, geom.Point{X: 9, Y: 0}}, true},
		{"collinear overlapping", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0}},
			Segment{geom.Point{X: 3, Y: 0}, geom.Point{X: 8, Y: 0}}, true},
		{"collinear disjoint", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}},
			Segment{geom.Point{X: 3, Y: 0}, geom.Point{X: 8, Y: 0}}, false},
		{"T touch", Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}},
			Segment{geom.Point{X: 5, Y: 0}, geom.Point{X: 5, Y: 7}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SegmentsIntersect(tc.a, tc.b); got != tc.want {
				t.Errorf("intersect = %v, want %v", got, tc.want)
			}
			if got := SegmentsIntersect(tc.b, tc.a); got != tc.want {
				t.Errorf("intersect not symmetric")
			}
		})
	}
}

func TestSqDistSegments(t *testing.T) {
	a := Segment{geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}}
	b := Segment{geom.Point{X: 0, Y: 3}, geom.Point{X: 10, Y: 3}}
	if got := math.Sqrt(SqDistSegments(a, b)); !almost(got, 3) {
		t.Errorf("parallel distance = %v, want 3", got)
	}
	c := Segment{geom.Point{X: 5, Y: -1}, geom.Point{X: 5, Y: 1}}
	if got := SqDistSegments(a, c); got != 0 {
		t.Errorf("crossing distance = %v, want 0", got)
	}
	d := Segment{geom.Point{X: 13, Y: 4}, geom.Point{X: 20, Y: 4}}
	if got := math.Sqrt(SqDistSegments(a, d)); !almost(got, 5) {
		t.Errorf("endpoint-to-endpoint distance = %v, want 5", got)
	}
}

func TestObjectValidate(t *testing.T) {
	bad := []Object{
		{Kind: KindPoint, Verts: nil},
		{Kind: KindPoint, Verts: make([]geom.Point, 2)},
		{Kind: KindPolyline, Verts: make([]geom.Point, 1)},
		{Kind: KindPolygon, Verts: make([]geom.Point, 2)},
		{Kind: Kind(9), Verts: make([]geom.Point, 3)},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("object %d should be invalid", i)
		}
	}
	good := []Object{
		NewPoint(1, geom.Point{}),
		NewPolyline(2, make([]geom.Point, 2)),
		NewPolygon(3, make([]geom.Point, 3)),
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("object %d should be valid: %v", i, err)
		}
	}
}

func TestBoundsCenterHalfDiag(t *testing.T) {
	o := NewPolyline(1, []geom.Point{{X: 0, Y: 0}, {X: 6, Y: 8}})
	if b := o.Bounds(); b != (geom.Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 8}) {
		t.Fatalf("bounds = %+v", b)
	}
	if c := o.Center(); c != (geom.Point{X: 3, Y: 4}) {
		t.Fatalf("center = %v", c)
	}
	if hd := o.HalfDiag(); !almost(hd, 5) {
		t.Fatalf("half diag = %v, want 5", hd)
	}
	p := NewPoint(2, geom.Point{X: 7, Y: 7})
	if hd := p.HalfDiag(); hd != 0 {
		t.Fatalf("point half diag = %v", hd)
	}
}

func TestContainsPoint(t *testing.T) {
	square := NewPolygon(1, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}})
	inside := []geom.Point{{X: 5, Y: 5}, {X: 0.1, Y: 0.1}, {X: 9.9, Y: 9.9}}
	for _, p := range inside {
		if !square.ContainsPoint(p) {
			t.Errorf("point %v should be inside", p)
		}
	}
	boundary := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 5}}
	for _, p := range boundary {
		if !square.ContainsPoint(p) {
			t.Errorf("boundary point %v should count as contained", p)
		}
	}
	outside := []geom.Point{{X: -1, Y: 5}, {X: 11, Y: 5}, {X: 5, Y: -0.1}, {X: 5, Y: 10.1}}
	for _, p := range outside {
		if square.ContainsPoint(p) {
			t.Errorf("point %v should be outside", p)
		}
	}
	// Concave polygon: an L shape.
	ell := NewPolygon(2, []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 10}, {X: 0, Y: 10},
	})
	if !ell.ContainsPoint(geom.Point{X: 2, Y: 8}) {
		t.Error("L polygon should contain (2,8)")
	}
	if ell.ContainsPoint(geom.Point{X: 8, Y: 8}) {
		t.Error("L polygon should not contain (8,8) (the notch)")
	}
	// Non-polygons never contain.
	line := NewPolyline(3, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	if line.ContainsPoint(geom.Point{X: 5, Y: 0}) {
		t.Error("polyline must not report containment")
	}
}

func TestObjectDistances(t *testing.T) {
	square := NewPolygon(1, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}})
	tests := []struct {
		name string
		o    Object
		want float64
	}{
		{"point inside polygon", NewPoint(2, geom.Point{X: 5, Y: 5}), 0},
		{"point on boundary", NewPoint(3, geom.Point{X: 10, Y: 5}), 0},
		{"point right of polygon", NewPoint(4, geom.Point{X: 13, Y: 5}), 3},
		{"point diagonal from corner", NewPoint(5, geom.Point{X: 13, Y: 14}), 5},
		{"polyline crossing", NewPolyline(6, []geom.Point{{X: -5, Y: 5}, {X: 15, Y: 5}}), 0},
		{"polyline inside", NewPolyline(7, []geom.Point{{X: 2, Y: 2}, {X: 8, Y: 8}}), 0},
		{"polyline outside", NewPolyline(8, []geom.Point{{X: 12, Y: 0}, {X: 12, Y: 10}}), 2},
		{"polygon overlapping", NewPolygon(9, []geom.Point{{X: 8, Y: 8}, {X: 15, Y: 8}, {X: 15, Y: 15}, {X: 8, Y: 15}}), 0},
		{"polygon apart", NewPolygon(10, []geom.Point{{X: 14, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 10}, {X: 14, Y: 10}}), 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(&square, &tc.o); !almost(got, tc.want) {
				t.Errorf("dist = %v, want %v", got, tc.want)
			}
			if got := Dist(&tc.o, &square); !almost(got, tc.want) {
				t.Errorf("dist not symmetric: %v vs %v", got, tc.want)
			}
		})
	}
}

func TestWithinDistAndPointFastPath(t *testing.T) {
	a := NewPoint(1, geom.Point{X: 0, Y: 0})
	b := NewPoint(2, geom.Point{X: 3, Y: 4})
	if !WithinDist(&a, &b, 5) {
		t.Error("exactly eps must match")
	}
	if WithinDist(&a, &b, 4.99) {
		t.Error("beyond eps must not match")
	}
}

// Property: object distance is always <= distance between any pair of
// vertices, and center distance <= object distance + both half diagonals.
func TestDistanceBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randObj := func(id int64) Object {
		base := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		n := 2 + rng.Intn(5)
		verts := make([]geom.Point, n)
		for i := range verts {
			verts[i] = geom.Point{X: base.X + rng.Float64()*4, Y: base.Y + rng.Float64()*4}
		}
		if rng.Intn(2) == 0 && n >= 3 {
			return NewPolygon(id, verts)
		}
		return NewPolyline(id, verts)
	}
	for trial := 0; trial < 500; trial++ {
		a := randObj(1)
		b := randObj(2)
		d := Dist(&a, &b)
		minVert := math.Inf(1)
		for _, va := range a.Verts {
			for _, vb := range b.Verts {
				if dv := va.Dist(vb); dv < minVert {
					minVert = dv
				}
			}
		}
		if d > minVert+1e-9 {
			t.Fatalf("trial %d: object distance %v exceeds min vertex distance %v", trial, d, minVert)
		}
		centerDist := a.Center().Dist(b.Center())
		if centerDist > d+a.HalfDiag()+b.HalfDiag()+1e-9 {
			t.Fatalf("trial %d: center distance bound violated: %v > %v + %v + %v",
				trial, centerDist, d, a.HalfDiag(), b.HalfDiag())
		}
	}
}

func TestKindString(t *testing.T) {
	if KindPoint.String() != "point" || KindPolyline.String() != "polyline" || KindPolygon.String() != "polygon" {
		t.Fatal("kind names broken")
	}
}
