package datagen

import (
	"math"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

func TestUniformBasics(t *testing.T) {
	b := World()
	ts := Uniform(b, 10_000, 1, 500)
	if len(ts) != 10_000 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0].ID != 500 || ts[9999].ID != 10_499 {
		t.Fatalf("id range %d..%d", ts[0].ID, ts[9999].ID)
	}
	for _, tu := range ts {
		if !b.Contains(tu.Pt) {
			t.Fatalf("point %v outside bounds", tu.Pt)
		}
	}
	// Rough uniformity: quadrant counts within 10%.
	c := b.Center()
	quads := [4]int{}
	for _, tu := range ts {
		i := 0
		if tu.Pt.X >= c.X {
			i |= 1
		}
		if tu.Pt.Y >= c.Y {
			i |= 2
		}
		quads[i]++
	}
	for i, q := range quads {
		if math.Abs(float64(q)-2500) > 250 {
			t.Fatalf("quadrant %d holds %d of 10000", i, q)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	kinds := []func() []tuple.Tuple{
		func() []tuple.Tuple { return Uniform(World(), 1000, 7, 0) },
		func() []tuple.Tuple { return GaussianClusters(World(), 1000, 30, 0.1, 0.8, 7, 0) },
		func() []tuple.Tuple { return TigerLike(World(), 1000, 7, 0) },
		func() []tuple.Tuple { return OSMLike(World(), 1000, 7, 0) },
	}
	for k, gen := range kinds {
		a, b := gen(), gen()
		if len(a) != len(b) {
			t.Fatalf("kind %d: lengths differ", k)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Pt != b[i].Pt {
				t.Fatalf("kind %d: element %d differs", k, i)
			}
		}
	}
}

func TestAllWithinWorld(t *testing.T) {
	b := World()
	sets := [][]tuple.Tuple{
		GaussianClusters(b, 5000, 30, 0.1, 0.8, 3, 0),
		TigerLike(b, 5000, 4, 0),
		OSMLike(b, 5000, 5, 0),
	}
	for k, ts := range sets {
		if len(ts) != 5000 {
			t.Fatalf("set %d: len %d", k, len(ts))
		}
		for _, tu := range ts {
			if !b.Contains(tu.Pt) {
				t.Fatalf("set %d: point %v outside world", k, tu.Pt)
			}
		}
	}
}

// skewness: the max/median occupied-cell count must be far higher for the
// clustered generators than for uniform data.
func cellSkew(ts []tuple.Tuple) float64 {
	g := grid.New(World(), 0.5, 2)
	counts := make([]int, g.NumCells())
	for _, tu := range ts {
		cx, cy := g.Locate(tu.Pt)
		counts[g.CellID(cx, cy)]++
	}
	max, occupied, total := 0, 0, 0
	for _, c := range counts {
		if c > 0 {
			occupied++
			total += c
		}
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(occupied)
	return float64(max) / mean
}

func TestClusteredGeneratorsAreSkewed(t *testing.T) {
	n := 50_000
	uni := cellSkew(Uniform(World(), n, 1, 0))
	for name, ts := range map[string][]tuple.Tuple{
		"gaussian": GaussianClusters(World(), n, 30, 0.1, 0.8, 2, 0),
		"tiger":    TigerLike(World(), n, 3, 0),
		"osm":      OSMLike(World(), n, 4, 0),
	} {
		skew := cellSkew(ts)
		if skew < uni*3 {
			t.Errorf("%s: skew %.1f not clearly above uniform %.1f", name, skew, uni)
		}
	}
}

func TestCodenamesDistinctIDRanges(t *testing.T) {
	sets := map[string][]tuple.Tuple{
		"R1": R1(100), "R2": R2(100), "S1": S1(100), "S2": S2(100),
	}
	seen := map[int64]string{}
	for name, ts := range sets {
		if len(ts) != 100 {
			t.Fatalf("%s: len %d", name, len(ts))
		}
		for _, tu := range ts {
			if other, dup := seen[tu.ID]; dup {
				t.Fatalf("id %d appears in both %s and %s", tu.ID, other, name)
			}
			seen[tu.ID] = name
		}
	}
}

func TestGaussianSigmaScaling(t *testing.T) {
	// With a single cluster and tiny sigma, points must hug the centre.
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 59, MaxY: 59} // scale factor 1
	ts := GaussianClusters(b, 2000, 1, 0.1, 0.1, 9, 0)
	var cx, cy float64
	for _, tu := range ts {
		cx += tu.Pt.X
		cy += tu.Pt.Y
	}
	cx /= float64(len(ts))
	cy /= float64(len(ts))
	var maxD float64
	for _, tu := range ts {
		if d := tu.Pt.Dist(geom.Point{X: cx, Y: cy}); d > maxD {
			maxD = d
		}
	}
	// 2000 draws from sigma=0.1: max distance around 0.4, certainly < 1.
	if maxD > 1 {
		t.Fatalf("sigma=0.1 cluster spread %v, expected tight cluster", maxD)
	}
}

func TestGaussianClustersClampsClusterCount(t *testing.T) {
	ts := GaussianClusters(World(), 100, 0, 0.1, 0.8, 1, 0)
	if len(ts) != 100 {
		t.Fatalf("len = %d", len(ts))
	}
}

// TestStreamingGeneratorsMatchSlices pins the streaming contract: each
// Each-form generator must make exactly the same rng draws as its slice
// form, so -stream-out files equal in-memory generation point for point.
func TestStreamingGeneratorsMatchSlices(t *testing.T) {
	w := World()
	const n = 5000
	cases := []struct {
		name   string
		slice  func() []tuple.Tuple
		stream func(emit func(tuple.Tuple))
	}{
		{"uniform", func() []tuple.Tuple { return Uniform(w, n, 7, 10) },
			func(emit func(tuple.Tuple)) { UniformEach(w, n, 7, 10, emit) }},
		{"gaussian", func() []tuple.Tuple { return GaussianClusters(w, n, 30, 0.1, 0.8, 7, 10) },
			func(emit func(tuple.Tuple)) { GaussianClustersEach(w, n, 30, 0.1, 0.8, 7, 10, emit) }},
		{"tiger", func() []tuple.Tuple { return TigerLike(w, n, 7, 10) },
			func(emit func(tuple.Tuple)) { TigerLikeEach(w, n, 7, 10, emit) }},
		{"osm", func() []tuple.Tuple { return OSMLike(w, n, 7, 10) },
			func(emit func(tuple.Tuple)) { OSMLikeEach(w, n, 7, 10, emit) }},
	}
	for _, tc := range cases {
		want := tc.slice()
		var got []tuple.Tuple
		tc.stream(func(tu tuple.Tuple) { got = append(got, tu) })
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d points, slice has %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Pt != want[i].Pt {
				t.Fatalf("%s: point %d = %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
}
