// Package datagen generates the evaluation data sets. The paper uses two
// real collections — TIGER Area Hydrography (94.1M points) and OSM Parks
// (42.7M) — plus synthetic Gaussian sets of 100M points with 30 clustered
// areas whose standard deviation ranges over [0.1, 0.8] (in a world of
// about 59 degrees of longitude), all within the same minimum bounding
// rectangle.
//
// This package reproduces those distributions at laptop scale: the world
// is a 100×100 box, cluster dispersions are scaled by width/59 to keep
// the paper's geometry, and the real collections are modelled by skewed
// mixtures whose codename constructors (S1, S2, R1, R2) carry fixed seeds
// and distinct tuple-id ranges so any two sets can be joined without id
// collisions. All generators are deterministic in their seed.
package datagen

import (
	"math/rand"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// World returns the default data-space bounds shared by examples,
// experiments and benchmarks.
func World() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
}

// paperWorldWidth is the approximate longitude extent of the paper's data
// MBR; cluster dispersions scale by bounds.Width()/paperWorldWidth.
const paperWorldWidth = 59.0

// collect adapts a streaming generator into a slice. Streaming (Each)
// and slice forms share one code path, so they make identical rng draws
// in identical order and produce identical points.
func collect(n int, gen func(emit func(tuple.Tuple))) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, n)
	gen(func(t tuple.Tuple) { out = append(out, t) })
	return out
}

// Uniform generates n independent uniform points in bounds.
func Uniform(bounds geom.Rect, n int, seed, idBase int64) []tuple.Tuple {
	return collect(n, func(emit func(tuple.Tuple)) { UniformEach(bounds, n, seed, idBase, emit) })
}

// UniformEach streams the exact point sequence Uniform would return,
// one tuple at a time, without materializing the data set.
func UniformEach(bounds geom.Rect, n int, seed, idBase int64, emit func(tuple.Tuple)) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		emit(tuple.Tuple{
			ID: idBase + int64(i),
			Pt: geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			},
		})
	}
}

// GaussianClusters generates n points distributed over numClusters
// Gaussian clusters with per-cluster standard deviation drawn uniformly
// from [minSigma, maxSigma] (after world scaling). Points are clamped
// into bounds, mirroring how real data accumulates at coastlines.
func GaussianClusters(bounds geom.Rect, n, numClusters int, minSigma, maxSigma float64, seed, idBase int64) []tuple.Tuple {
	return collect(n, func(emit func(tuple.Tuple)) {
		GaussianClustersEach(bounds, n, numClusters, minSigma, maxSigma, seed, idBase, emit)
	})
}

// GaussianClustersEach streams the exact point sequence GaussianClusters
// would return.
func GaussianClustersEach(bounds geom.Rect, n, numClusters int, minSigma, maxSigma float64, seed, idBase int64, emit func(tuple.Tuple)) {
	if numClusters < 1 {
		numClusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scale := bounds.Width() / paperWorldWidth
	type cluster struct {
		c     geom.Point
		sigma float64
	}
	clusters := make([]cluster, numClusters)
	for i := range clusters {
		clusters[i] = cluster{
			c: geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			},
			sigma: (minSigma + rng.Float64()*(maxSigma-minSigma)) * scale,
		}
	}
	for i := 0; i < n; i++ {
		cl := clusters[rng.Intn(numClusters)]
		emit(tuple.Tuple{
			ID: idBase + int64(i),
			Pt: clampPoint(geom.Point{
				X: cl.c.X + rng.NormFloat64()*cl.sigma,
				Y: cl.c.Y + rng.NormFloat64()*cl.sigma,
			}, bounds),
		})
	}
}

// TigerLike models the TIGER Area Hydrography distribution: water
// features trace river courses and shorelines, giving a heavy-tailed mix
// of many elongated micro-clusters (random-walk traces) with a thin
// uniform background.
func TigerLike(bounds geom.Rect, n int, seed, idBase int64) []tuple.Tuple {
	return collect(n, func(emit func(tuple.Tuple)) { TigerLikeEach(bounds, n, seed, idBase, emit) })
}

// TigerLikeEach streams the exact point sequence TigerLike would return.
func TigerLikeEach(bounds geom.Rect, n int, seed, idBase int64, yield func(tuple.Tuple)) {
	rng := rand.New(rand.NewSource(seed))
	scale := bounds.Width() / paperWorldWidth
	count := 0
	id := idBase
	emit := func(p geom.Point) {
		yield(tuple.Tuple{ID: id, Pt: clampPoint(p, bounds)})
		id++
		count++
	}
	// Real hydrography has essentially no uniform scatter: nearly every
	// point lies on a water feature. A 3% background keeps the grid's
	// empty regions from being perfectly empty without flattening the
	// skew that adaptive replication exploits.
	background := n * 3 / 100
	for i := 0; i < background; i++ {
		emit(geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		})
	}
	// River traces: long, tight random walks. Like the real collection,
	// the features cover a minority of the space at high local density —
	// the regime in which replication decisions matter.
	for count < n {
		p := geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
		walkLen := 50 + int(rng.ExpFloat64()*800)
		step := 0.04 * scale
		for s := 0; s < walkLen && count < n; s++ {
			p.X += rng.NormFloat64() * step
			p.Y += rng.NormFloat64() * step
			emit(geom.Point{
				X: p.X + rng.NormFloat64()*step/2,
				Y: p.Y + rng.NormFloat64()*step/2,
			})
		}
	}
}

// OSMLike models the OSM Parks distribution: parks concentrate around
// population centres with sizes following a power law, over a modest
// uniform background.
func OSMLike(bounds geom.Rect, n int, seed, idBase int64) []tuple.Tuple {
	return collect(n, func(emit func(tuple.Tuple)) { OSMLikeEach(bounds, n, seed, idBase, emit) })
}

// OSMLikeEach streams the exact point sequence OSMLike would return.
func OSMLikeEach(bounds geom.Rect, n int, seed, idBase int64, emit func(tuple.Tuple)) {
	rng := rand.New(rand.NewSource(seed))
	scale := bounds.Width() / paperWorldWidth
	const numCities = 80
	type city struct {
		c      geom.Point
		sigma  float64
		weight float64
	}
	cities := make([]city, numCities)
	totalW := 0.0
	for i := range cities {
		// Zipf-ish weights: city rank r gets weight 1/(r+1).
		w := 1.0 / float64(i+1)
		totalW += w
		cities[i] = city{
			c: geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			},
			sigma:  (0.1 + rng.Float64()*0.5) * scale,
			weight: w,
		}
	}
	pick := func() city {
		t := rng.Float64() * totalW
		for _, c := range cities {
			t -= c.weight
			if t <= 0 {
				return c
			}
		}
		return cities[numCities-1]
	}
	for i := 0; i < n; i++ {
		var p geom.Point
		if rng.Float64() < 0.05 {
			p = geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			}
		} else {
			c := pick()
			p = geom.Point{
				X: c.c.X + rng.NormFloat64()*c.sigma,
				Y: c.c.Y + rng.NormFloat64()*c.sigma,
			}
		}
		emit(tuple.Tuple{ID: idBase + int64(i), Pt: clampPoint(p, bounds)})
	}
}

// Paper codename constructors. Each carries a fixed seed and a distinct
// id range so arbitrary combinations can be joined directly.

// R1 is the TIGER/Area Hydrography stand-in (paper: 94.1M points).
func R1(n int) []tuple.Tuple { return TigerLike(World(), n, 303, 0) }

// R2 is the OSM/Parks stand-in (paper: 42.7M points).
func R2(n int) []tuple.Tuple { return OSMLike(World(), n, 404, 1_000_000_000) }

// S1 is the first synthetic Gaussian set (paper: 100M points, 30 clusters,
// sigma in [0.1, 0.8]).
func S1(n int) []tuple.Tuple {
	return GaussianClusters(World(), n, 30, 0.1, 0.8, 101, 2_000_000_000)
}

// S2 is the second synthetic Gaussian set with independent clusters.
func S2(n int) []tuple.Tuple {
	return GaussianClusters(World(), n, 30, 0.1, 0.8, 202, 3_000_000_000)
}

func clampPoint(p geom.Point, r geom.Rect) geom.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}
