package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Geometry generators for the non-point join engine: every point
// distribution in this package doubles as a center distribution, and a
// shape stream turns each center into a rectangle, polyline or simple
// polygon whose extent is drawn from [MinExtent, MaxExtent]. Shape
// draws come from a dedicated rng seeded from ShapeSeed, consumed in
// emission order — so the streaming (Each) and slice forms, and the
// text and columnar outputs built on them, see identical objects in
// identical order.

// GeomSpec describes one synthetic geometry set.
type GeomSpec struct {
	// Kind is the shape: "rect", "polyline" or "polygon".
	Kind string
	// MinExtent and MaxExtent bound the object's MBR diameter; each
	// object's extent is drawn uniformly in between.
	MinExtent, MaxExtent float64
	// Verts is the vertex budget for polylines and polygons (ignored for
	// rects): polylines get exactly Verts vertices, polygons Verts-gon
	// star shapes. Clamped to at least 2 (polyline) / 3 (polygon).
	Verts int
	// ShapeSeed seeds the shape rng, independent of the center seed.
	ShapeSeed int64
}

func (s GeomSpec) withDefaults() (GeomSpec, error) {
	switch s.Kind {
	case "rect", "polyline", "polygon":
	default:
		return s, fmt.Errorf("datagen: unknown geometry kind %q (rect, polyline, polygon)", s.Kind)
	}
	if s.MaxExtent <= 0 {
		s.MaxExtent = 1
	}
	if s.MinExtent <= 0 || s.MinExtent > s.MaxExtent {
		s.MinExtent = s.MaxExtent / 10
	}
	minVerts := 2
	if s.Kind == "polygon" {
		minVerts = 3
	}
	if s.Verts < minVerts {
		s.Verts = max(minVerts, 6)
	}
	return s, nil
}

// GeomObjects collects GeomObjectsEach into a slice.
func GeomObjects(spec GeomSpec, centers func(emit func(tuple.Tuple))) ([]extgeom.Object, error) {
	var out []extgeom.Object
	err := GeomObjectsEach(spec, centers, func(o extgeom.Object) { out = append(out, o) })
	return out, err
}

// GeomObjectsEach streams one geometry object per center tuple: the
// object inherits the tuple's id, and its shape parameters are drawn
// from the spec's shape rng in emission order.
func GeomObjectsEach(spec GeomSpec, centers func(emit func(tuple.Tuple)), emit func(extgeom.Object)) error {
	spec, err := spec.withDefaults()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.ShapeSeed))
	shape := shapeFunc(spec)
	centers(func(t tuple.Tuple) {
		ext := spec.MinExtent + rng.Float64()*(spec.MaxExtent-spec.MinExtent)
		emit(shape(rng, t.ID, t.Pt, ext))
	})
	return nil
}

// shapeFunc returns the per-center shape constructor for the spec.
func shapeFunc(spec GeomSpec) func(rng *rand.Rand, id int64, c geom.Point, ext float64) extgeom.Object {
	switch spec.Kind {
	case "rect":
		return func(rng *rand.Rand, id int64, c geom.Point, ext float64) extgeom.Object {
			// Aspect in [1/3, 3]: w·h fit inside the ext×ext budget.
			aspect := math.Exp((rng.Float64()*2 - 1) * math.Ln2 * 1.5)
			w := ext * math.Min(1, aspect) / 2
			h := ext * math.Min(1, 1/aspect) / 2
			return extgeom.NewPolygon(id, []geom.Point{
				{X: c.X - w, Y: c.Y - h}, {X: c.X + w, Y: c.Y - h},
				{X: c.X + w, Y: c.Y + h}, {X: c.X - w, Y: c.Y + h},
			})
		}
	case "polyline":
		return func(rng *rand.Rand, id int64, c geom.Point, ext float64) extgeom.Object {
			// A jittered random walk across the extent: the polyline
			// drifts from one side of its MBR budget to the other, like a
			// road segment or river reach.
			verts := make([]geom.Point, spec.Verts)
			dir := rng.Float64() * 2 * math.Pi
			dx, dy := math.Cos(dir), math.Sin(dir)
			for i := range verts {
				f := float64(i)/float64(spec.Verts-1) - 0.5
				verts[i] = geom.Point{
					X: c.X + f*ext*dx + rng.NormFloat64()*ext/8,
					Y: c.Y + f*ext*dy + rng.NormFloat64()*ext/8,
				}
			}
			return extgeom.NewPolyline(id, verts)
		}
	default: // "polygon"
		return func(rng *rand.Rand, id int64, c geom.Point, ext float64) extgeom.Object {
			// Star-shaped about the center: sorted angles with jittered
			// radii always yield a simple (non-self-intersecting) ring.
			angles := make([]float64, spec.Verts)
			for i := range angles {
				angles[i] = rng.Float64() * 2 * math.Pi
			}
			slices.Sort(angles)
			verts := make([]geom.Point, spec.Verts)
			for i, a := range angles {
				r := ext / 2 * (0.4 + 0.6*rng.Float64())
				verts[i] = geom.Point{X: c.X + r*math.Cos(a), Y: c.Y + r*math.Sin(a)}
			}
			return extgeom.NewPolygon(id, verts)
		}
	}
}
