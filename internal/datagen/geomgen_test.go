package datagen

import (
	"testing"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/tuple"
)

func TestGeomObjects(t *testing.T) {
	w := World()
	centers := func(emit func(tuple.Tuple)) { UniformEach(w, 500, 7, 100, emit) }
	for _, kind := range []string{"rect", "polyline", "polygon"} {
		spec := GeomSpec{Kind: kind, MinExtent: 0.5, MaxExtent: 3, Verts: 5, ShapeSeed: 8}
		objs, err := GeomObjects(spec, centers)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(objs) != 500 {
			t.Fatalf("%s: %d objects", kind, len(objs))
		}
		for i, o := range objs {
			if o.ID != 100+int64(i) {
				t.Fatalf("%s: object %d has id %d (center ids must carry over)", kind, i, o.ID)
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("%s: object %d invalid: %v", kind, i, err)
			}
			b := o.Bounds()
			if d := max(b.Width(), b.Height()); d > spec.MaxExtent*1.0001 {
				// Rect and polygon extents stay inside the budget;
				// polylines may overshoot via vertex jitter, but not wildly.
				if kind != "polyline" || d > 2*spec.MaxExtent {
					t.Fatalf("%s: object %d extent %v exceeds budget %v", kind, i, d, spec.MaxExtent)
				}
			}
			switch kind {
			case "rect":
				if o.Kind != extgeom.KindPolygon || len(o.Verts) != 4 {
					t.Fatalf("rect: object %d is %v with %d verts", i, o.Kind, len(o.Verts))
				}
			case "polyline":
				if o.Kind != extgeom.KindPolyline || len(o.Verts) != 5 {
					t.Fatalf("polyline: object %d is %v with %d verts", i, o.Kind, len(o.Verts))
				}
			case "polygon":
				if o.Kind != extgeom.KindPolygon || len(o.Verts) != 5 {
					t.Fatalf("polygon: object %d is %v with %d verts", i, o.Kind, len(o.Verts))
				}
			}
		}

		// Deterministic: a second run draws the identical objects.
		again, err := GeomObjects(spec, centers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range objs {
			if objs[i].Kind != again[i].Kind || len(objs[i].Verts) != len(again[i].Verts) {
				t.Fatalf("%s: object %d shape differs across runs", kind, i)
			}
			for j := range objs[i].Verts {
				if objs[i].Verts[j] != again[i].Verts[j] {
					t.Fatalf("%s: object %d vertex %d differs across runs", kind, i, j)
				}
			}
		}
	}
}

func TestGeomObjectsStreamParity(t *testing.T) {
	// The streaming form must see the objects of the slice form in the
	// same order — the contract that makes -out and -stream-out
	// byte-equivalent in cmd/datagen.
	w := World()
	centers := func(emit func(tuple.Tuple)) { GaussianClustersEach(w, 300, 10, 0.1, 0.5, 11, 0, emit) }
	spec := GeomSpec{Kind: "polygon", MaxExtent: 2, Verts: 7, ShapeSeed: 12}
	sliceForm, err := GeomObjects(spec, centers)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = GeomObjectsEach(spec, centers, func(o extgeom.Object) {
		if i >= len(sliceForm) {
			t.Fatalf("stream emitted more than %d objects", len(sliceForm))
		}
		want := sliceForm[i]
		if o.ID != want.ID || o.Kind != want.Kind || len(o.Verts) != len(want.Verts) {
			t.Fatalf("object %d diverged between stream and slice", i)
		}
		for j := range o.Verts {
			if o.Verts[j] != want.Verts[j] {
				t.Fatalf("object %d vertex %d diverged", i, j)
			}
		}
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(sliceForm) {
		t.Fatalf("stream emitted %d objects, slice form %d", i, len(sliceForm))
	}
}

func TestGeomSpecValidation(t *testing.T) {
	if _, err := GeomObjects(GeomSpec{Kind: "blob"}, func(func(tuple.Tuple)) {}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Degenerate extents fall back to defaults rather than erroring.
	objs, err := GeomObjects(GeomSpec{Kind: "rect", MinExtent: -1, MaxExtent: 0},
		func(emit func(tuple.Tuple)) { UniformEach(World(), 10, 1, 0, emit) })
	if err != nil || len(objs) != 10 {
		t.Fatalf("defaults: %v, %d objects", err, len(objs))
	}
}
