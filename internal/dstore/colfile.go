package dstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Columnar dataset file ("colfile"): the colsweep SoA slab layout made
// durable. Points are stored in chunks — per grid partition when the
// file is partitioned, or in fixed-size runs otherwise — as three
// parallel lanes (xs, ys f64; ids i64), little-endian, each chunk
// 8-byte aligned so an mmap of the file yields zero-copy colsweep.Cols
// views. A directory at the tail locates every chunk; header and
// directory carry CRC-32 (IEEE) checksums.
//
// Layout:
//
//	header (88 B, 8-aligned)
//	chunk* : chunkHeader (16 B) | xs | ys | ids [| payLens(pad8) | payBlob(pad8)]
//	directory: dirEntry (32 B) * nChunks | crc u32
const (
	colMagic     = 0x31434A53 // "SJC1" little-endian
	colVersion   = 1
	colHeaderLen = 88
	colChunkHdr  = 16
	colDirEntry  = 32

	colFlagPayloads    = 1 << 0 // chunks carry payload sections
	colFlagPartitioned = 1 << 1 // chunks keyed by grid cell, with halos

	// ChunkKindNative marks a chunk of points whose home cell is the
	// chunk's cell; ChunkKindHalo marks replicas within eps of the cell.
	ChunkKindNative = 0
	ChunkKindHalo   = 1

	maxColChunk = 1 << 26 // points per chunk sanity cap for decoders
)

// ColOptions configures a ColWriter.
type ColOptions struct {
	Eps         float64   // grid epsilon the partitioning was built for (0 if none)
	Res         float64   // grid resolution factor k (0 if none)
	Bounds      geom.Rect // dataset extent; accumulated from chunks when empty
	Payloads    bool      // chunks carry per-point payload sections
	Partitioned bool      // chunks are (cell, kind) grid partitions
}

type colDirRec struct {
	cell   int64
	kind   uint64
	count  uint64
	offset uint64
}

// ColWriter streams chunks into a columnar dataset file without holding
// more than one chunk in memory.
type ColWriter struct {
	f      *os.File
	path   string
	opts   ColOptions
	off    uint64
	count  uint64 // native points written
	bounds geom.Rect
	dir    []colDirRec
	buf    []byte
	closed bool
}

// NewColWriter creates path (truncating any existing file) and writes a
// placeholder header; Close patches the real header and directory in.
func NewColWriter(path string, opts ColOptions) (*ColWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &ColWriter{
		f:      f,
		path:   path,
		opts:   opts,
		off:    colHeaderLen,
		bounds: geom.EmptyRect(),
	}
	if !opts.Bounds.IsEmpty() {
		w.bounds = opts.Bounds
	}
	if _, err := f.Write(make([]byte, colHeaderLen)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func pad8(n int) int { return (8 - n&7) & 7 }

// AppendChunk writes one chunk. kind is ChunkKindNative or
// ChunkKindHalo; cell is the grid cell id, or -1 for unpartitioned
// files. payloads must be nil unless the file was opened with
// Payloads, in which case it must hold one entry per point.
func (w *ColWriter) AppendChunk(cell int64, kind byte, cols *colsweep.Cols, payloads [][]byte) error {
	n := cols.Len()
	if len(cols.Ys) != n || len(cols.IDs) != n {
		return fmt.Errorf("dstore: ragged chunk lanes (%d/%d/%d)", len(cols.Xs), len(cols.Ys), len(cols.IDs))
	}
	if w.opts.Payloads != (payloads != nil) || (payloads != nil && len(payloads) != n) {
		return fmt.Errorf("dstore: payload section mismatch for chunk of %d points", n)
	}
	size := colChunkHdr + 3*8*n
	var blobLen int
	if payloads != nil {
		for _, p := range payloads {
			blobLen += len(p)
		}
		size += 4*n + pad8(4*n) + blobLen + pad8(blobLen)
	}
	if cap(w.buf) < size {
		w.buf = make([]byte, 0, size)
	}
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(cell)))
	b = append(b, kind, 0, 0, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint32(b, 0)
	for _, x := range cols.Xs {
		b = appendF64(b, x)
	}
	for _, y := range cols.Ys {
		b = appendF64(b, y)
	}
	for _, id := range cols.IDs {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	if payloads != nil {
		for _, p := range payloads {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		}
		b = append(b, make([]byte, pad8(4*n))...)
		for _, p := range payloads {
			b = append(b, p...)
		}
		b = append(b, make([]byte, pad8(blobLen))...)
	}
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	w.buf = b[:0]
	w.dir = append(w.dir, colDirRec{cell: cell, kind: uint64(kind), count: uint64(n), offset: w.off})
	w.off += uint64(len(b))
	if kind == ChunkKindNative {
		w.count += uint64(n)
		if w.opts.Bounds.IsEmpty() {
			for i := 0; i < n; i++ {
				w.bounds = w.bounds.ExtendPoint(geom.Point{X: cols.Xs[i], Y: cols.Ys[i]})
			}
		}
	}
	return nil
}

// Close writes the directory, patches the header, and fsyncs the file.
func (w *ColWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	dirOff := w.off
	db := make([]byte, 0, colDirEntry*len(w.dir)+4)
	for _, d := range w.dir {
		db = binary.LittleEndian.AppendUint64(db, uint64(d.cell))
		db = binary.LittleEndian.AppendUint64(db, d.kind)
		db = binary.LittleEndian.AppendUint64(db, d.count)
		db = binary.LittleEndian.AppendUint64(db, d.offset)
	}
	db = binary.LittleEndian.AppendUint32(db, crc32.ChecksumIEEE(db))
	if _, err := w.f.Write(db); err != nil {
		w.f.Close()
		return err
	}

	var flags uint16
	if w.opts.Payloads {
		flags |= colFlagPayloads
	}
	if w.opts.Partitioned {
		flags |= colFlagPartitioned
	}
	bounds := w.bounds
	if bounds.IsEmpty() {
		bounds = geom.Rect{}
	}
	hdr := make([]byte, colHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], colMagic)
	binary.LittleEndian.PutUint16(hdr[4:], colVersion)
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], w.count)
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(bounds.MinX))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(bounds.MinY))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(bounds.MaxX))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(bounds.MaxY))
	binary.LittleEndian.PutUint64(hdr[48:], math.Float64bits(w.opts.Eps))
	binary.LittleEndian.PutUint64(hdr[56:], math.Float64bits(w.opts.Res))
	binary.LittleEndian.PutUint32(hdr[64:], uint32(len(w.dir)))
	binary.LittleEndian.PutUint64(hdr[72:], dirOff)
	binary.LittleEndian.PutUint32(hdr[80:], crc32.ChecksumIEEE(hdr[:80]))
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort closes and removes a partially written file.
func (w *ColWriter) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
	os.Remove(w.path)
}

// tuplesRun is the chunk size of unpartitioned tuple files: large
// enough to amortize chunk headers, small enough that streaming writers
// hold O(run) memory.
const tuplesRun = 1 << 16

// TuplesWriter streams tuples into an unpartitioned colfile in
// fixed-size runs, holding at most one run in memory. It produces the
// same bytes as WriteTuplesFile over the same sequence.
type TuplesWriter struct {
	w    *ColWriter
	cols colsweep.Cols
	pays [][]byte
	n    uint64
}

// NewTuplesWriter creates path (truncating any existing file).
func NewTuplesWriter(path string) (*TuplesWriter, error) {
	w, err := NewColWriter(path, ColOptions{Payloads: true})
	if err != nil {
		return nil, err
	}
	// pays starts non-nil: AppendChunk distinguishes nil (no payload
	// section) from empty, and tuple files always carry the section.
	return &TuplesWriter{w: w, pays: [][]byte{}}, nil
}

// Append buffers one tuple, flushing a chunk at each run boundary.
func (t *TuplesWriter) Append(tp tuple.Tuple) error {
	t.cols.Append(tp.Pt.X, tp.Pt.Y, tp.ID)
	t.pays = append(t.pays, tp.Payload)
	t.n++
	if t.cols.Len() >= tuplesRun {
		return t.flush()
	}
	return nil
}

func (t *TuplesWriter) flush() error {
	if err := t.w.AppendChunk(-1, ChunkKindNative, &t.cols, t.pays); err != nil {
		t.w.Abort()
		return err
	}
	t.cols.Reset()
	t.pays = t.pays[:0]
	return nil
}

// Count returns how many tuples have been appended.
func (t *TuplesWriter) Count() uint64 { return t.n }

// Close flushes the tail run and finalizes the file.
func (t *TuplesWriter) Close() error {
	// An empty file still carries one empty chunk, matching what
	// WriteTuplesFile has always written.
	if t.cols.Len() > 0 || t.n == 0 {
		if err := t.flush(); err != nil {
			return err
		}
	}
	return t.w.Close()
}

// Abort closes and removes a partially written file.
func (t *TuplesWriter) Abort() { t.w.Abort() }

// WriteTuplesFile writes ts as an unpartitioned colfile in fixed-size
// runs, carrying payloads so the registry round-trips exactly.
func WriteTuplesFile(path string, ts []tuple.Tuple) error {
	w, err := NewTuplesWriter(path)
	if err != nil {
		return err
	}
	for _, t := range ts {
		if err := w.Append(t); err != nil {
			return err
		}
	}
	return w.Close()
}

// ColChunkInfo describes one chunk of an open colfile.
type ColChunkInfo struct {
	Cell  int64
	Kind  byte
	Count int
}

// ColReader is a read-only view of a columnar dataset file, backed by
// mmap where available so chunk lanes are served zero-copy.
type ColReader struct {
	data     []byte
	unmap    func() error
	count    uint64
	flags    uint16
	bounds   geom.Rect
	eps, res float64
	chunks   []ColChunkInfo
	offs     []uint64
}

// OpenColFile maps path and validates its header and directory.
func OpenColFile(path string) (*ColReader, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := newColReader(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	r.unmap = unmap
	return r, nil
}

func newColReader(data []byte) (*ColReader, error) {
	if len(data) < colHeaderLen {
		return nil, fmt.Errorf("dstore: colfile too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != colMagic {
		return nil, fmt.Errorf("dstore: not a colfile (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != colVersion {
		return nil, fmt.Errorf("dstore: colfile version %d unsupported (want %d)", v, colVersion)
	}
	if crc := binary.LittleEndian.Uint32(data[80:]); crc != crc32.ChecksumIEEE(data[:80]) {
		return nil, fmt.Errorf("dstore: colfile header checksum mismatch")
	}
	r := &ColReader{
		data:  data,
		flags: binary.LittleEndian.Uint16(data[6:]),
		count: binary.LittleEndian.Uint64(data[8:]),
		bounds: geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(data[16:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(data[24:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(data[32:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(data[40:])),
		},
		eps: math.Float64frombits(binary.LittleEndian.Uint64(data[48:])),
		res: math.Float64frombits(binary.LittleEndian.Uint64(data[56:])),
	}
	nChunks := binary.LittleEndian.Uint32(data[64:])
	dirOff := binary.LittleEndian.Uint64(data[72:])
	dirLen := uint64(colDirEntry)*uint64(nChunks) + 4
	if nChunks > maxColChunk || dirOff < colHeaderLen || dirOff+dirLen > uint64(len(data)) {
		return nil, fmt.Errorf("dstore: colfile directory out of range")
	}
	dir := data[dirOff : dirOff+dirLen]
	if crc := binary.LittleEndian.Uint32(dir[len(dir)-4:]); crc != crc32.ChecksumIEEE(dir[:len(dir)-4]) {
		return nil, fmt.Errorf("dstore: colfile directory checksum mismatch")
	}
	r.chunks = make([]ColChunkInfo, nChunks)
	r.offs = make([]uint64, nChunks)
	for i := range r.chunks {
		e := dir[i*colDirEntry:]
		cell := int64(binary.LittleEndian.Uint64(e[0:]))
		kind := binary.LittleEndian.Uint64(e[8:])
		count := binary.LittleEndian.Uint64(e[16:])
		off := binary.LittleEndian.Uint64(e[24:])
		if kind > ChunkKindHalo || count > maxColChunk {
			return nil, fmt.Errorf("dstore: colfile chunk %d corrupt (kind %d, count %d)", i, kind, count)
		}
		need, err := r.chunkSize(int(count))
		if err != nil {
			return nil, err
		}
		if off < colHeaderLen || off%8 != 0 || off+need > dirOff {
			return nil, fmt.Errorf("dstore: colfile chunk %d out of range", i)
		}
		hdrCount := binary.LittleEndian.Uint32(data[off+8:])
		if uint64(hdrCount) != count {
			return nil, fmt.Errorf("dstore: colfile chunk %d count mismatch (%d vs %d)", i, hdrCount, count)
		}
		r.chunks[i] = ColChunkInfo{Cell: cell, Kind: byte(kind), Count: int(count)}
		r.offs[i] = off
	}
	return r, nil
}

// chunkSize returns the minimum byte length of a chunk of n points
// (payload blob length excluded; the blob is bounds-checked lazily).
func (r *ColReader) chunkSize(n int) (uint64, error) {
	if n < 0 || n > maxColChunk {
		return 0, fmt.Errorf("dstore: colfile chunk count %d out of range", n)
	}
	size := uint64(colChunkHdr) + 3*8*uint64(n)
	if r.flags&colFlagPayloads != 0 {
		size += uint64(4*n + pad8(4*n))
	}
	return size, nil
}

// NumChunks returns how many chunks the file holds.
func (r *ColReader) NumChunks() int { return len(r.chunks) }

// Info returns the directory entry for chunk i.
func (r *ColReader) Info(i int) ColChunkInfo { return r.chunks[i] }

// Count returns the number of native points in the file.
func (r *ColReader) Count() uint64 { return r.count }

// Bounds returns the dataset extent recorded in the header.
func (r *ColReader) Bounds() geom.Rect { return r.bounds }

// Eps returns the grid epsilon the file was partitioned for (0 if
// unpartitioned).
func (r *ColReader) Eps() float64 { return r.eps }

// Res returns the grid resolution factor recorded in the header.
func (r *ColReader) Res() float64 { return r.res }

// Partitioned reports whether chunks are (cell, kind) grid partitions.
func (r *ColReader) Partitioned() bool { return r.flags&colFlagPartitioned != 0 }

// HasPayloads reports whether chunks carry payload sections.
func (r *ColReader) HasPayloads() bool { return r.flags&colFlagPayloads != 0 }

// Chunk returns the SoA lanes of chunk i as colsweep.Cols. On
// little-endian hosts the slices alias the underlying mapping
// (zero-copy); the caller must not modify them and must not use them
// after Close. On other hosts the lanes are decoded copies.
func (r *ColReader) Chunk(i int) colsweep.Cols {
	info := r.chunks[i]
	n := info.Count
	base := r.offs[i] + colChunkHdr
	return colsweep.Cols{
		Xs:  f64Lane(r.data[base:], n),
		Ys:  f64Lane(r.data[base+uint64(8*n):], n),
		IDs: i64Lane(r.data[base+uint64(16*n):], n),
	}
}

// Payloads returns chunk i's payload section (nil when the file carries
// none). Returned slices alias the mapping.
func (r *ColReader) Payloads(i int) ([][]byte, error) {
	if r.flags&colFlagPayloads == 0 {
		return nil, nil
	}
	info := r.chunks[i]
	n := info.Count
	lensOff := r.offs[i] + colChunkHdr + uint64(24*n)
	lens := r.data[lensOff : lensOff+uint64(4*n)]
	blobOff := lensOff + uint64(4*n+pad8(4*n))
	out := make([][]byte, n)
	limit := uint64(len(r.data))
	if i+1 < len(r.offs) {
		limit = r.offs[i+1]
	} else {
		limit = binary.LittleEndian.Uint64(r.data[72:]) // dirOff
	}
	for j := 0; j < n; j++ {
		l := uint64(binary.LittleEndian.Uint32(lens[4*j:]))
		if blobOff+l > limit {
			return nil, fmt.Errorf("dstore: colfile chunk %d payload blob out of range", i)
		}
		if l > 0 {
			out[j] = r.data[blobOff : blobOff+l]
		}
		blobOff += l
	}
	return out, nil
}

// Tuples materializes every native point (payloads copied), for
// loading a dataset back into the in-memory registry.
func (r *ColReader) Tuples() ([]tuple.Tuple, error) {
	out := make([]tuple.Tuple, 0, r.count)
	for i := range r.chunks {
		if r.chunks[i].Kind != ChunkKindNative {
			continue
		}
		cols := r.Chunk(i)
		pays, err := r.Payloads(i)
		if err != nil {
			return nil, err
		}
		for j := 0; j < cols.Len(); j++ {
			t := tuple.Tuple{ID: cols.IDs[j], Pt: geom.Point{X: cols.Xs[j], Y: cols.Ys[j]}}
			if pays != nil && len(pays[j]) > 0 {
				t.Payload = append([]byte(nil), pays[j]...)
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Close releases the mapping. Lanes returned by Chunk become invalid.
func (r *ColReader) Close() error {
	r.data = nil
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		return u()
	}
	return nil
}
