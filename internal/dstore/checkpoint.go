package dstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint file: a JSON manifest of registry, stream, and skew state
// plus one opaque engine snapshot blob per stream, CRC-framed as a
// whole. The file name carries the log sequence number the checkpoint
// was taken at; recovery picks the newest file that validates and
// falls back to older ones.
//
// Layout:
//
//	magic u32 "SJK1" | ver u16 | pad u16 | u32 manifestLen | manifest JSON
//	( u32 blobLen | blob )*   one per manifest stream, in order
//	crc u32 over everything before
const (
	ckptMagic   = 0x314B4A53 // "SJK1" little-endian
	ckptVersion = 1
	ckptKeep    = 2 // checkpoints retained (newest + one fallback)
)

// ckptManifest is the JSON manifest of one checkpoint.
type ckptManifest struct {
	NextRev     int64         `json:"next_rev"`
	RegistrySeq uint64        `json:"registry_seq"`
	StreamsSeq  uint64        `json:"streams_seq"`
	SkewSeq     uint64        `json:"skew_seq"`
	TelemSeq    uint64        `json:"telem_seq,omitempty"`
	LastSeq     uint64        `json:"last_seq"`
	Datasets    []ckptDataset `json:"datasets"`
	Streams     []ckptStream  `json:"streams"`
	Skew        []SkewSample  `json:"skew,omitempty"`
	Telem       []byte        `json:"telem,omitempty"` // opaque telemetry snapshot (base64 via JSON)
}

type ckptDataset struct {
	Name   string `json:"name"`
	Rev    int64  `json:"rev"`
	Gen    int64  `json:"gen"`
	File   string `json:"file"` // relative to the store root
	Points uint64 `json:"points"`
}

type ckptStream struct {
	Spec       StreamSpec `json:"spec"`
	CoveredSeq uint64     `json:"covered_seq"`
}

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.ck", seq) }

func parseCkptName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "ckpt-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".ck")
	if !ok || len(rest) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeCheckpointFile writes one checkpoint file durably.
func writeCheckpointFile(dir string, m ckptManifest, blobs [][]byte) (string, error) {
	mj, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	b := make([]byte, 0, 12+len(mj))
	b = binary.LittleEndian.AppendUint32(b, ckptMagic)
	b = binary.LittleEndian.AppendUint16(b, ckptVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(mj)))
	b = append(b, mj...)
	for _, blob := range blobs {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))

	path := filepath.Join(dir, ckptName(m.LastSeq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// readCheckpointFile parses and validates one checkpoint file.
func readCheckpointFile(path string) (ckptManifest, [][]byte, error) {
	var m ckptManifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, nil, err
	}
	if len(data) < 16 {
		return m, nil, fmt.Errorf("dstore: checkpoint too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(body) {
		return m, nil, fmt.Errorf("dstore: checkpoint checksum mismatch")
	}
	c := cursor{b: body}
	if c.u32() != ckptMagic {
		return m, nil, fmt.Errorf("dstore: not a checkpoint file")
	}
	if v := c.u16(); v != ckptVersion {
		return m, nil, fmt.Errorf("dstore: checkpoint version %d unsupported", v)
	}
	c.u16() // pad
	mj := c.bytes(int(c.u32()))
	if c.err != nil {
		return m, nil, c.err
	}
	if err := json.Unmarshal(mj, &m); err != nil {
		return m, nil, fmt.Errorf("dstore: checkpoint manifest: %w", err)
	}
	blobs := make([][]byte, 0, len(m.Streams))
	for range m.Streams {
		blobs = append(blobs, c.bytes(int(c.u32())))
	}
	if err := c.done(); err != nil {
		return m, nil, err
	}
	return m, blobs, nil
}

// listCheckpoints returns checkpoint paths newest-first.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type ck struct {
		path string
		seq  uint64
	}
	var cks []ck
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseCkptName(e.Name()); ok {
			cks = append(cks, ck{path: filepath.Join(dir, e.Name()), seq: seq})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].seq > cks[j].seq })
	out := make([]string, len(cks))
	for i, c := range cks {
		out[i] = c.path
	}
	return out, nil
}
