package dstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type recSeen struct {
	seq     uint64
	typ     byte
	payload []byte
}

func replayAll(t *testing.T, l *wlog, from uint64) []recSeen {
	t.Helper()
	var out []recSeen
	if err := l.Replay(from, func(seq uint64, typ byte, payload []byte) error {
		out = append(out, recSeen{seq: seq, typ: typ, payload: append([]byte(nil), payload...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogAppendReplayRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny rotation threshold so a handful of records spans segments.
	l, err := openLog(dir, logOptions{segBytes: 64})
	if err != nil {
		t.Fatalf("openLog: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%02d", i))
		seq, err := l.Append(byte(i%7+1), payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if got := l.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	got := replayAll(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.seq != uint64(i+1) || r.typ != byte(i%7+1) || string(r.payload) != fmt.Sprintf("record-%02d", i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: everything must still be there and appends continue the
	// sequence.
	l2, err := openLog(dir, logOptions{segBytes: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != n {
		t.Fatalf("reopened LastSeq = %d, want %d", got, n)
	}
	if seq, err := l2.Append(9, []byte("tail")); err != nil || seq != n+1 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	if got := replayAll(t, l2, n); len(got) != 2 {
		t.Fatalf("replay from %d saw %d records, want 2", n, len(got))
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, logOptions{})
	if err != nil {
		t.Fatalf("openLog: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 10)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	l.Close()

	// Tear the tail: chop half of the last record's bytes.
	seg := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(seg, fi.Size()-12); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	l2, err := openLog(dir, logOptions{})
	if err != nil {
		t.Fatalf("reopen torn log: %v", err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 4 {
		t.Fatalf("LastSeq after torn tail = %d, want 4", got)
	}
	// The torn record is gone; the next append must reuse its sequence
	// number on a clean frame.
	if seq, err := l2.Append(2, []byte("replacement")); err != nil || seq != 5 {
		t.Fatalf("append after torn tail: seq %d err %v", seq, err)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 5 || got[4].typ != 2 {
		t.Fatalf("replay after torn tail: %d records, last typ %d", len(got), got[len(got)-1].typ)
	}
}

func TestLogCorruptRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, logOptions{segBytes: 48})
	if err != nil {
		t.Fatalf("openLog: %v", err)
	}
	var offsets []int64
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
		offsets = append(offsets, l.size)
	}
	nsegs := len(l.segs)
	if nsegs < 3 {
		t.Fatalf("want >= 3 segments for this test, got %d", nsegs)
	}
	second := l.segs[1]
	l.Close()

	// Flip a payload byte in the second segment: its suffix and every
	// later segment become unreachable.
	data, err := os.ReadFile(second.path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[segHeaderLen+frameHeadLen] ^= 0xFF
	if err := os.WriteFile(second.path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	l2, err := openLog(dir, logOptions{segBytes: 48})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != second.firstSeq-1 {
		t.Fatalf("LastSeq = %d, want %d (last record before the corruption)", got, second.firstSeq-1)
	}
	got := replayAll(t, l2, 0)
	for i, r := range got {
		if r.seq != uint64(i+1) {
			t.Fatalf("replay record %d has seq %d", i, r.seq)
		}
	}
	if uint64(len(got)) != second.firstSeq-1 {
		t.Fatalf("replayed %d records, want %d", len(got), second.firstSeq-1)
	}
}

func TestLogTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, logOptions{segBytes: 48})
	if err != nil {
		t.Fatalf("openLog: %v", err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("pay-%02d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if len(l.segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(l.segs))
	}
	activeFirst := l.segs[len(l.segs)-1].firstSeq

	// Truncating through everything must still keep the active segment.
	if err := l.TruncateThrough(l.LastSeq()); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if len(l.segs) != 1 || l.segs[0].firstSeq != activeFirst {
		t.Fatalf("after truncate: %d segments, first %d (want active %d)", len(l.segs), l.segs[0].firstSeq, activeFirst)
	}
	// Whatever survives replays contiguously from the active segment's
	// first sequence (the segment may be empty if the last append rotated).
	got := replayAll(t, l, 0)
	for i, r := range got {
		if r.seq != activeFirst+uint64(i) {
			t.Fatalf("replay record %d has seq %d, want %d", i, r.seq, activeFirst+uint64(i))
		}
	}
	// Sequence numbering continues unbroken after truncation + reopen.
	last := l.LastSeq()
	l.Close()
	l2, err := openLog(dir, logOptions{segBytes: 48})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if seq, err := l2.Append(1, []byte("x")); err != nil || seq != last+1 {
		t.Fatalf("append after truncated reopen: seq %d err %v, want %d", seq, err, last+1)
	}
}
