package dstore

import (
	"testing"
	"time"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func pts(ids ...int64) []tuple.Tuple {
	ts := make([]tuple.Tuple, len(ids))
	for i, id := range ids {
		ts[i] = tuple.Tuple{ID: id, Pt: geom.Point{X: float64(id), Y: float64(-id)}}
	}
	return ts
}

func sameTuples(t *testing.T, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Pt != want[i].Pt || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("tuple %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStoreRecoverFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec.LastSeq != 0 || len(rec.Datasets) != 0 || len(rec.Streams) != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	if _, err := st.LogDatasetPut("roads", 1, pts(1, 2, 3)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := st.LogDatasetApply("roads", 1, pts(4), []int64{2}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if _, err := st.LogDatasetPut("pois", 2, pts(10, 11)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := st.LogDatasetDelete("pois"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	spec := StreamSpec{Name: "live", Eps: 1.5, MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, err := st.LogStreamCreate(spec); err != nil {
		t.Fatalf("stream create: %v", err)
	}
	at := time.Unix(1700000000, 12345)
	muts := []StreamMutation{
		{Set: 0, Tuple: tuple.Tuple{ID: 7, Pt: geom.Point{X: 1, Y: 2}}},
		{Set: 1, Delete: true, Tuple: tuple.Tuple{ID: 9}},
	}
	if _, err := st.LogStreamBatch("live", at, muts); err != nil {
		t.Fatalf("stream batch: %v", err)
	}
	if err := st.AppendSkew("roads", "pois", 1.5, map[string]int{"hot_cells": 3}); err != nil {
		t.Fatalf("skew: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if rec2.CheckpointSeq != 0 {
		t.Fatalf("CheckpointSeq = %d, want 0 (no checkpoint written)", rec2.CheckpointSeq)
	}
	if rec2.ReplayedRecords != 7 {
		t.Fatalf("ReplayedRecords = %d, want 7", rec2.ReplayedRecords)
	}
	if len(rec2.Datasets) != 1 {
		t.Fatalf("recovered %d datasets, want 1 (pois was deleted)", len(rec2.Datasets))
	}
	ds := rec2.Datasets[0]
	if ds.Name != "roads" || ds.Rev != 1 || ds.Gen != 1 {
		t.Fatalf("dataset = %s r%d g%d, want roads r1 g1", ds.Name, ds.Rev, ds.Gen)
	}
	// put(1,2,3) + upsert(4) - delete(2), order-preserving.
	sameTuples(t, ds.Tuples, pts(1, 3, 4))
	// NextRev must clear every revision ever assigned, including the
	// deleted dataset's rev 2.
	if rec2.NextRev != 3 {
		t.Fatalf("NextRev = %d, want 3", rec2.NextRev)
	}
	if len(rec2.Streams) != 1 {
		t.Fatalf("recovered %d streams, want 1", len(rec2.Streams))
	}
	rs := rec2.Streams[0]
	if rs.Spec != spec || rs.Snapshot != nil || len(rs.Tail) != 1 {
		t.Fatalf("recovered stream = %+v", rs)
	}
	tb := rs.Tail[0]
	if !tb.AppliedAt.Equal(at) || len(tb.Muts) != 2 {
		t.Fatalf("tail batch = %+v", tb)
	}
	if tb.Muts[0].Set != 0 || tb.Muts[0].Delete || tb.Muts[0].Tuple.ID != 7 ||
		tb.Muts[0].Tuple.Pt != muts[0].Tuple.Pt ||
		!tb.Muts[1].Delete || tb.Muts[1].Tuple.ID != 9 {
		t.Fatalf("tail mutations = %+v", tb.Muts)
	}
	if len(rec2.Skew) != 1 || rec2.Skew[0].R != "roads" || rec2.Skew[0].S != "pois" {
		t.Fatalf("skew history = %+v", rec2.Skew)
	}
}

func TestStoreCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := st.LogDatasetPut("roads", 1, pts(1, 2)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := st.LogDatasetApply("roads", 1, pts(3), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	spec := StreamSpec{Name: "live", Eps: 1, MaxX: 10, MaxY: 10}
	if _, err := st.LogStreamCreate(spec); err != nil {
		t.Fatalf("stream create: %v", err)
	}
	batchSeq, err := st.LogStreamBatch("live", time.Unix(1, 0), []StreamMutation{{Set: 0, Tuple: tuple.Tuple{ID: 1}}})
	if err != nil {
		t.Fatalf("stream batch: %v", err)
	}

	// Checkpoint covering everything so far: the stream blob is opaque to
	// the store, any bytes do.
	blob := []byte("engine-snapshot")
	ckSeq, err := st.WriteCheckpoint(CheckpointState{
		NextRev:     2,
		RegistrySeq: st.LastSeq(),
		StreamsSeq:  st.LastSeq(),
		Datasets:    []DatasetCheckpoint{{Name: "roads", Rev: 1, Gen: 1, Tuples: pts(1, 2, 3)}},
		Streams:     []StreamCheckpoint{{Spec: spec, CoveredSeq: batchSeq, Blob: blob}},
	})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ckSeq != st.LastSeq() {
		t.Fatalf("checkpoint seq %d, want %d", ckSeq, st.LastSeq())
	}

	// Two records after the checkpoint: only these replay on reopen.
	if _, err := st.LogDatasetApply("roads", 2, pts(4), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	tailAt := time.Unix(2, 0)
	if _, err := st.LogStreamBatch("live", tailAt, []StreamMutation{{Set: 1, Tuple: tuple.Tuple{ID: 2}}}); err != nil {
		t.Fatalf("stream batch: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if rec.CheckpointSeq != ckSeq {
		t.Fatalf("CheckpointSeq = %d, want %d", rec.CheckpointSeq, ckSeq)
	}
	if rec.ReplayedRecords != 2 {
		t.Fatalf("ReplayedRecords = %d, want 2 (bounded by the checkpoint)", rec.ReplayedRecords)
	}
	if rec.NextRev != 2 {
		t.Fatalf("NextRev = %d, want 2", rec.NextRev)
	}
	if len(rec.Datasets) != 1 {
		t.Fatalf("recovered %d datasets", len(rec.Datasets))
	}
	ds := rec.Datasets[0]
	if ds.Rev != 1 || ds.Gen != 2 {
		t.Fatalf("dataset r%d g%d, want r1 g2 (checkpoint gen 1 + tail apply)", ds.Rev, ds.Gen)
	}
	sameTuples(t, ds.Tuples, pts(1, 2, 3, 4))
	if len(rec.Streams) != 1 {
		t.Fatalf("recovered %d streams", len(rec.Streams))
	}
	rs := rec.Streams[0]
	if string(rs.Snapshot) != string(blob) {
		t.Fatalf("snapshot = %q, want %q", rs.Snapshot, blob)
	}
	if len(rs.Tail) != 1 || !rs.Tail[0].AppliedAt.Equal(tailAt) {
		t.Fatalf("tail = %+v, want only the post-checkpoint batch", rs.Tail)
	}

	// A second checkpoint that covers the whole log makes the next open
	// replay nothing at all.
	if _, err := st2.WriteCheckpoint(CheckpointState{
		NextRev:     2,
		RegistrySeq: st2.LastSeq(),
		StreamsSeq:  st2.LastSeq(),
		Datasets:    []DatasetCheckpoint{{Name: "roads", Rev: 1, Gen: 2, Tuples: pts(1, 2, 3, 4)}},
		Streams:     []StreamCheckpoint{{Spec: spec, CoveredSeq: st2.LastSeq(), Blob: blob}},
	}); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	st2.Close()

	st3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer st3.Close()
	if rec3.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d after full checkpoint, want 0", rec3.ReplayedRecords)
	}
	sameTuples(t, rec3.Datasets[0].Tuples, pts(1, 2, 3, 4))
}

func TestStoreStreamDeleteDropsTail(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	spec := StreamSpec{Name: "ephemeral", Eps: 1, MaxX: 1, MaxY: 1}
	if _, err := st.LogStreamCreate(spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := st.LogStreamBatch("ephemeral", time.Unix(1, 0), []StreamMutation{{Tuple: tuple.Tuple{ID: 1}}}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if _, err := st.LogStreamDelete("ephemeral"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	st.Close()

	st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if len(rec.Streams) != 0 {
		t.Fatalf("deleted stream recovered: %+v", rec.Streams)
	}
}

func TestStoreSkewHistoryBounded(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{MaxSkewSamples: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.AppendSkew("r", "s", 1.0, map[string]int{"round": i}); err != nil {
			t.Fatalf("skew %d: %v", i, err)
		}
	}
	hist := st.SkewHistory()
	if len(hist) != 3 {
		t.Fatalf("history holds %d samples, want 3 (bounded)", len(hist))
	}
	if string(hist[len(hist)-1].Report) != `{"round":9}` {
		t.Fatalf("latest sample = %s, want round 9", hist[len(hist)-1].Report)
	}
}
