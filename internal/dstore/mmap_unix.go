//go:build unix

package dstore

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. Page alignment of the mapping gives the
// 8-byte alignment the lane accessors need for zero-copy views. Falls
// back to an aligned read if the mmap syscall fails.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		b, rerr := readFileAligned(path)
		return b, nil, rerr
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
