package dstore

import (
	"encoding/binary"
	"io"
	"math"
	"os"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian, which is what the on-disk formats use. When it does
// (every supported platform in practice), lane accessors reinterpret
// mapped bytes in place; otherwise they decode copies.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64Lane views n little-endian float64s starting at b[0]. Zero-copy
// when the host is little-endian and b is 8-byte aligned.
func f64Lane(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// i64Lane views n little-endian int64s starting at b[0].
func i64Lane(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// readFileAligned reads a whole file into an 8-byte-aligned buffer (the
// buffer is backed by a []uint64 allocation), for platforms without
// mmap or when mapping fails.
func readFileAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	words := make([]uint64, (size+7)/8)
	var buf []byte
	if len(words) > 0 {
		buf = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
