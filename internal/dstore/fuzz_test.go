package dstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment assembles a segment image: header with firstSeq, then one
// frame per (seq, typ, payload) triple. Used for seed corpus entries.
func buildSegment(firstSeq uint64, recs ...struct {
	seq     uint64
	typ     byte
	payload []byte
}) []byte {
	var b bytes.Buffer
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	b.Write(hdr[:])
	for _, r := range recs {
		frame := make([]byte, frameHeadLen+len(r.payload))
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(r.payload)))
		binary.LittleEndian.PutUint64(frame[8:], r.seq)
		frame[16] = r.typ
		copy(frame[frameHeadLen:], r.payload)
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))
		b.Write(frame)
	}
	return b.Bytes()
}

type rec = struct {
	seq     uint64
	typ     byte
	payload []byte
}

// FuzzLogRecord feeds arbitrary bytes to the segment scanner as the
// contents of the first log segment. Whatever the bytes are, opening
// must not panic, replay must stop at the last valid record (yielding a
// contiguous prefix 1..k), and the reopened log must accept appends that
// then replay back intact.
func FuzzLogRecord(f *testing.F) {
	valid := buildSegment(1,
		rec{1, recDatasetPut, []byte("alpha")},
		rec{2, recStreamBatch, []byte("beta")},
	)
	f.Add(valid)
	// Torn tail: half of the second record's frame is missing.
	f.Add(valid[:len(valid)-6])
	// Corrupt CRC on the first record.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[segHeaderLen+4] ^= 0xFF
	f.Add(crcFlip)
	// Wrong segment version.
	badVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(badVer[4:], segVersion+1)
	f.Add(badVer)
	// Duplicate sequence number: second record repeats seq 1.
	f.Add(buildSegment(1, rec{1, 1, []byte("a")}, rec{1, 2, []byte("b")}))
	// Sequence gap.
	f.Add(buildSegment(1, rec{1, 1, []byte("a")}, rec{3, 2, []byte("c")}))
	// Oversized declared payload length.
	huge := buildSegment(1, rec{1, 1, []byte("a")})
	binary.LittleEndian.PutUint32(huge[segHeaderLen:], maxRecordLen+1)
	f.Add(huge)
	// Header only, empty file, and garbage.
	f.Add(buildSegment(1))
	f.Add([]byte{})
	f.Add([]byte("not a log segment at all, just some text padding..."))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatalf("write seed segment: %v", err)
		}
		l, err := openLog(dir, logOptions{})
		if err != nil {
			// I/O-level failure only; corruption is never an error.
			t.Skipf("openLog: %v", err)
		}
		defer l.Close()

		var seqs []uint64
		if err := l.Replay(0, func(seq uint64, typ byte, payload []byte) error {
			seqs = append(seqs, seq)
			return nil
		}); err != nil {
			t.Fatalf("replay of recovered log failed: %v", err)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("replay yielded seq %d at position %d; valid prefix must be contiguous from 1", s, i)
			}
		}
		if got := l.LastSeq(); got != uint64(len(seqs)) {
			t.Fatalf("LastSeq = %d but replay saw %d records", got, len(seqs))
		}

		// The recovered log must be fully writable again.
		next, err := l.Append(recSkew, []byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if next != uint64(len(seqs))+1 {
			t.Fatalf("append got seq %d, want %d", next, len(seqs)+1)
		}
		count := 0
		if err := l.Replay(0, func(uint64, byte, []byte) error {
			count++
			return nil
		}); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if count != len(seqs)+1 {
			t.Fatalf("second replay saw %d records, want %d", count, len(seqs)+1)
		}
	})
}
