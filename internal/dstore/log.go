// Package dstore is the durable dataset subsystem: an append-only,
// CRC-framed ingest log (segment files + fsync policy), periodic
// checkpoints of registry and stream-engine state, and an mmap-backed
// columnar on-disk dataset format reusing the colsweep SoA slab layout.
// Recovery is checkpoint + tail-of-log: the newest valid checkpoint
// restores the bulk of the state and only records appended after its
// coverage cursors are replayed.
//
// Layout under a store directory:
//
//	wal/wal-<firstseq>.log    CRC-framed record segments
//	datasets/<name>-r<rev>-g<gen>.col  columnar dataset files
//	checkpoints/ckpt-<seq>.ck checkpoint manifests + stream snapshots
//
// Every multi-byte integer in every on-disk format is little-endian.
package dstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Log segment format: a 16-byte header (magic, version, first sequence
// number) followed by records framed as
//
//	u32 payloadLen | u32 crc | u64 seq | u8 type | payload
//
// where crc is CRC-32 (IEEE) over seq, type and payload. Sequence
// numbers start at 1 and increase by exactly 1 across segment
// boundaries; replay stops cleanly at the first truncated, corrupt,
// or out-of-sequence record.
const (
	segMagic      = 0x4C574A53 // "SJWL" little-endian
	segVersion    = 1
	segHeaderLen  = 16
	frameHeadLen  = 4 + 4 + 8 + 1
	maxRecordLen  = 64 << 20
	defaultSegMax = 64 << 20
)

// segInfo is one on-disk segment.
type segInfo struct {
	path     string
	firstSeq uint64
}

// logOptions tunes a segment log.
type logOptions struct {
	fsync      bool  // fsync after every append
	segBytes   int64 // rotation threshold
	onAppend   func(recordBytes int64)
	onFsync    func()
	onSegments func(n int64)
}

// wlog is the append-only segmented record log.
type wlog struct {
	dir  string
	opts logOptions

	mu      sync.Mutex
	f       *os.File
	size    int64
	lastSeq uint64
	segs    []segInfo // ordered by firstSeq; last is active
	buf     []byte
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok || len(rest) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// openLog opens (or creates) the segment log under dir, truncating any
// torn tail so the log ends at its last valid record. Segments beyond a
// corruption point are unreachable by replay and are deleted.
func openLog(dir string, opts logOptions) (*wlog, error) {
	if opts.segBytes <= 0 {
		opts.segBytes = defaultSegMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &wlog{dir: dir, opts: opts}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, segInfo{path: filepath.Join(dir, e.Name()), firstSeq: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstSeq < l.segs[j].firstSeq })

	// Validate every segment in order; at the first invalid byte the log
	// logically ends: truncate that segment to its valid prefix and drop
	// any later segments (they are unreachable by sequence continuity).
	lastSeq := uint64(0) // last valid seq seen so far
	cut := -1            // index of first segment to drop, -1 = log clean
	for i, s := range l.segs {
		if i > 0 && s.firstSeq != lastSeq+1 {
			cut = i // gap in the sequence space: later segments unreachable
			break
		}
		valid, last, err := scanSegment(s.path, s.firstSeq, 0, nil)
		if err != nil {
			return nil, err
		}
		if valid < 0 {
			cut = i // unreadable segment header
			break
		}
		if i == 0 {
			// The log may start past seq 1 after earlier truncation.
			lastSeq = s.firstSeq - 1
		}
		if last > 0 {
			lastSeq = last
		}
		fi, err := os.Stat(s.path)
		if err != nil {
			return nil, err
		}
		if valid < fi.Size() {
			// Torn or corrupt tail inside this segment: keep the valid
			// prefix, drop everything after.
			if err := os.Truncate(s.path, valid); err != nil {
				return nil, err
			}
			cut = i + 1
			break
		}
	}
	if cut >= 0 {
		for _, s := range l.segs[cut:] {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		l.segs = l.segs[:cut]
	}
	l.lastSeq = lastSeq

	if len(l.segs) == 0 {
		if err := l.newSegmentLocked(l.lastSeq + 1); err != nil {
			return nil, err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		l.size = fi.Size()
	}
	l.notifySegments()
	return l, nil
}

// scanSegment reads one segment sequentially, verifying the header, the
// per-record CRC framing and sequence continuity (the first record must
// carry exactly firstSeq when from == 0, or continue from a prior
// segment). It returns the byte length of the valid prefix (-1 for an
// invalid header), the last valid sequence number (0 when the segment
// holds no valid records), and calls fn for every valid record with
// seq >= from. Corruption is not an error: the scan just stops.
func scanSegment(path string, firstSeq, from uint64, fn func(seq uint64, typ byte, payload []byte) error) (int64, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < segHeaderLen {
		return -1, 0, nil
	}
	if binary.LittleEndian.Uint32(data[0:]) != segMagic ||
		binary.LittleEndian.Uint16(data[4:]) != segVersion {
		return -1, 0, nil
	}
	if binary.LittleEndian.Uint64(data[8:]) != firstSeq {
		return -1, 0, nil
	}
	off := int64(segHeaderLen)
	expect := firstSeq
	last := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeadLen {
			break
		}
		plen := binary.LittleEndian.Uint32(rest[0:])
		if plen > maxRecordLen || int64(len(rest)) < int64(frameHeadLen)+int64(plen) {
			break
		}
		crc := binary.LittleEndian.Uint32(rest[4:])
		seq := binary.LittleEndian.Uint64(rest[8:])
		if seq != expect {
			break
		}
		body := rest[8 : frameHeadLen+int(plen)] // seq | type | payload
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		if fn != nil && seq >= from {
			if err := fn(seq, rest[16], rest[frameHeadLen:frameHeadLen+int(plen)]); err != nil {
				return off, last, err
			}
		}
		off += int64(frameHeadLen) + int64(plen)
		last = seq
		expect = seq + 1
	}
	return off, last, nil
}

// newSegmentLocked rotates to a fresh segment whose first record will
// carry firstSeq. Callers hold l.mu (or are in single-threaded setup).
func (l *wlog) newSegmentLocked(firstSeq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = segHeaderLen
	l.segs = append(l.segs, segInfo{path: path, firstSeq: firstSeq})
	l.notifySegments()
	return nil
}

// Append frames and writes one record, returning its sequence number.
func (l *wlog) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("dstore: record of %d bytes exceeds the %d byte limit", len(payload), maxRecordLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.lastSeq + 1
	need := frameHeadLen + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	b := l.buf[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(b[8:], seq)
	b[16] = typ
	copy(b[frameHeadLen:], payload)
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:]))
	if _, err := l.f.Write(b); err != nil {
		return 0, err
	}
	l.size += int64(need)
	l.lastSeq = seq
	if l.opts.fsync {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		if l.opts.onFsync != nil {
			l.opts.onFsync()
		}
	}
	if l.opts.onAppend != nil {
		l.opts.onAppend(int64(need))
	}
	if l.size >= l.opts.segBytes {
		if err := l.newSegmentLocked(seq + 1); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// LastSeq returns the sequence number of the last appended record.
func (l *wlog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Replay calls fn for every valid record with seq >= from, in order.
func (l *wlog) Replay(from uint64, fn func(seq uint64, typ byte, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	if l.f != nil {
		// Make buffered appends visible to the read-back.
		if err := l.f.Sync(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	l.mu.Unlock()
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].firstSeq <= from {
			continue // entire segment below the replay point
		}
		if _, _, err := scanSegment(s.path, s.firstSeq, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough removes every segment whose records all have
// seq <= through. The active segment is never removed.
func (l *wlog) TruncateThrough(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := 0
	for keep < len(l.segs)-1 && l.segs[keep+1].firstSeq <= through+1 {
		if err := os.Remove(l.segs[keep].path); err != nil && !os.IsNotExist(err) {
			return err
		}
		keep++
	}
	l.segs = l.segs[keep:]
	l.notifySegments()
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *wlog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.opts.onFsync != nil {
		l.opts.onFsync()
	}
	return nil
}

// Close syncs and closes the active segment.
func (l *wlog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func (l *wlog) notifySegments() {
	if l.opts.onSegments != nil {
		l.opts.onSegments(int64(len(l.segs)))
	}
}

// syncDir fsyncs a directory so entry creations/removals are durable.
// Directory fsync is unsupported on some platforms/filesystems, so a
// sync failure is best-effort rather than fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	d.Sync()
	return nil
}
