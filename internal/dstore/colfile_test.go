package dstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func randTuples(rng *rand.Rand, n int, withPayload bool) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.Tuple{
			ID: int64(i + 1),
			Pt: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
		if withPayload && i%3 != 0 {
			ts[i].Payload = []byte(fmt.Sprintf("payload-%d", i))
		}
	}
	return ts
}

func TestTuplesFileRoundTrip(t *testing.T) {
	for _, withPayload := range []bool{false, true} {
		name := "plain"
		if withPayload {
			name = "payloads"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			ts := randTuples(rng, 1234, withPayload)
			path := filepath.Join(t.TempDir(), "ds.col")
			if err := WriteTuplesFile(path, ts); err != nil {
				t.Fatalf("write: %v", err)
			}
			r, err := OpenColFile(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer r.Close()
			if r.Count() != uint64(len(ts)) {
				t.Fatalf("count = %d, want %d", r.Count(), len(ts))
			}
			if !r.HasPayloads() {
				// Tuple files always carry payload sections so the
				// registry round-trips exactly, even when every payload
				// happens to be empty.
				t.Fatalf("HasPayloads = false on a tuples file")
			}
			got, err := r.Tuples()
			if err != nil {
				t.Fatalf("tuples: %v", err)
			}
			if len(got) != len(ts) {
				t.Fatalf("read %d tuples, want %d", len(got), len(ts))
			}
			// WriteTuplesFile must preserve insertion order exactly:
			// dataset revision equivalence (and therefore byte-identical
			// join output) depends on it.
			for i := range ts {
				if got[i].ID != ts[i].ID || got[i].Pt != ts[i].Pt || string(got[i].Payload) != string(ts[i].Payload) {
					t.Fatalf("tuple %d mismatch: got %+v want %+v", i, got[i], ts[i])
				}
			}
		})
	}
}

func TestTuplesFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.col")
	if err := WriteTuplesFile(path, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	r, err := OpenColFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer r.Close()
	if r.Count() != 0 {
		t.Fatalf("count = %d, want 0", r.Count())
	}
	got, err := r.Tuples()
	if err != nil || len(got) != 0 {
		t.Fatalf("tuples: %d, %v", len(got), err)
	}
}

func TestColFileRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := randTuples(rng, 200, true)
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.col")
	if err := WriteTuplesFile(path, ts); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		// Point lanes are intentionally not checksummed (they are served
		// zero-copy from the mapping), but the directory at the tail is.
		{"flipped-directory-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-10] ^= 0x40
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xFF
			return c
		}},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".col")
			if err := os.WriteFile(p, tc.mut(data), 0o644); err != nil {
				t.Fatalf("write corrupt file: %v", err)
			}
			r, err := OpenColFile(p)
			if err == nil {
				// Header-level corruption may only surface on read.
				_, err = r.Tuples()
				r.Close()
			}
			if err == nil {
				t.Fatalf("corrupt file %s accepted", tc.name)
			}
		})
	}
}

// bruteForcePairs is the O(n*m) oracle, using the same squared-distance
// predicate as the sweep kernel so boundary cases agree bit-for-bit.
func bruteForcePairs(rs, ss []tuple.Tuple, eps float64) []tuple.Pair {
	var out []tuple.Pair
	for _, r := range rs {
		for _, s := range ss {
			dx := r.Pt.X - s.Pt.X
			dy := r.Pt.Y - s.Pt.Y
			if dx*dx+dy*dy <= eps*eps {
				out = append(out, tuple.Pair{RID: r.ID, SID: s.ID})
			}
		}
	}
	return out
}

func sortPairs(ps []tuple.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func TestJoinFilesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := randTuples(rng, 600, false)
	ss := make([]tuple.Tuple, 500)
	for i := range ss {
		ss[i] = tuple.Tuple{
			ID: int64(10_000 + i),
			Pt: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
	}
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	const fileEps = 2.5
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.col")
	sPath := filepath.Join(dir, "s.col")
	if err := WritePartitioned(rPath, rs, fileEps, 0, bounds); err != nil {
		t.Fatalf("write r: %v", err)
	}
	if err := WritePartitioned(sPath, ss, fileEps, 0, bounds); err != nil {
		t.Fatalf("write s: %v", err)
	}
	rr, err := OpenColFile(rPath)
	if err != nil {
		t.Fatalf("open r: %v", err)
	}
	defer rr.Close()
	sr, err := OpenColFile(sPath)
	if err != nil {
		t.Fatalf("open s: %v", err)
	}
	defer sr.Close()
	if !rr.Partitioned() || !sr.Partitioned() {
		t.Fatalf("files not marked partitioned")
	}

	// The join must be exact both at the partitioning eps and at any
	// smaller query eps (the halo width only has to cover it).
	for _, eps := range []float64{fileEps, 1.0, 0.2} {
		var got []tuple.Pair
		n, err := JoinFiles(rr, sr, eps, func(ps []tuple.Pair) {
			got = append(got, ps...)
		})
		if err != nil {
			t.Fatalf("JoinFiles eps=%g: %v", eps, err)
		}
		want := bruteForcePairs(rs, ss, eps)
		if n != int64(len(got)) {
			t.Fatalf("eps=%g: returned count %d != emitted %d", eps, n, len(got))
		}
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("eps=%g: %d pairs, want %d", eps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eps=%g: pair %d = %+v, want %+v", eps, i, got[i], want[i])
			}
		}
		if len(want) == 0 {
			t.Fatalf("eps=%g: oracle found no pairs; test is vacuous", eps)
		}
	}
}

func TestJoinFilesRejectsOversizedEps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := randTuples(rng, 50, false)
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.col")
	p2 := filepath.Join(dir, "b.col")
	if err := WritePartitioned(p1, ts, 1.0, 0, bounds); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WritePartitioned(p2, ts, 1.0, 0, bounds); err != nil {
		t.Fatalf("write: %v", err)
	}
	a, err := OpenColFile(p1)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer a.Close()
	b, err := OpenColFile(p2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer b.Close()
	// Halos were built for eps=1.0; a wider query would miss pairs, so it
	// must be refused rather than silently wrong.
	if _, err := JoinFiles(a, b, 2.0, func([]tuple.Pair) {}); err == nil {
		t.Fatalf("JoinFiles accepted eps larger than the partitioning eps")
	}
}
