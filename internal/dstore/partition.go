package dstore

import (
	"fmt"

	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// WritePartitioned writes ts as a grid-partitioned colfile for distance
// threshold eps and resolution res (cell side res·eps): one native
// chunk per non-empty cell, plus one halo chunk holding the replicas
// within eps of the cell (the universal MINDIST <= ε rule). Both chunk
// kinds are written x-sorted, so JoinFiles can merge the S side of a
// cell linearly and feed the sweep kernel without sorting at join time.
//
// Joining the file at any threshold <= eps stays correct: the halo of a
// cell for a smaller threshold is a subset of the stored one.
func WritePartitioned(path string, ts []tuple.Tuple, eps, res float64, bounds geom.Rect) error {
	if res <= 0 {
		res = 2 // smallest resolution that still supports agreement-based replication
	}
	if bounds.IsEmpty() {
		bounds = geom.EmptyRect()
		for _, t := range ts {
			bounds = bounds.ExtendPoint(t.Pt)
		}
	}
	if bounds.IsEmpty() {
		return fmt.Errorf("dstore: cannot partition an empty dataset without bounds")
	}
	g := grid.New(bounds, eps, res)
	native := make([][]int32, g.NumCells())
	halo := make([][]int32, g.NumCells())
	var targets []int
	for i, t := range ts {
		cx, cy := g.Locate(t.Pt)
		cell := g.CellID(cx, cy)
		native[cell] = append(native[cell], int32(i))
		targets = g.ReplicationTargets(t.Pt, targets[:0])
		for _, c := range targets {
			halo[c] = append(halo[c], int32(i))
		}
	}

	w, err := NewColWriter(path, ColOptions{Eps: eps, Res: res, Bounds: bounds, Partitioned: true})
	if err != nil {
		return err
	}
	b := colsweep.Get()
	defer colsweep.Put(b)
	var cols colsweep.Cols
	appendGroup := func(cell int64, kind byte, idx []int32) error {
		if len(idx) == 0 {
			return nil
		}
		cols.Reset()
		for _, i := range idx {
			t := &ts[i]
			cols.Append(t.Pt.X, t.Pt.Y, t.ID)
		}
		cols.SortByX(b)
		return w.AppendChunk(cell, kind, &cols, nil)
	}
	for cell := range native {
		if err := appendGroup(int64(cell), ChunkKindNative, native[cell]); err != nil {
			w.Abort()
			return err
		}
		if err := appendGroup(int64(cell), ChunkKindHalo, halo[cell]); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}

// cellChunks indexes a partitioned reader's directory by (cell, kind).
type cellChunks struct {
	native map[int64]int // cell -> chunk index
	halo   map[int64]int
}

func indexChunks(r *ColReader) cellChunks {
	cc := cellChunks{native: make(map[int64]int), halo: make(map[int64]int)}
	for i := 0; i < r.NumChunks(); i++ {
		info := r.Info(i)
		if info.Kind == ChunkKindNative {
			cc.native[info.Cell] = i
		} else {
			cc.halo[info.Cell] = i
		}
	}
	return cc
}

// mergeSorted merges two x-sorted slabs into dst (reset first) in one
// linear pass, preserving x order.
func mergeSorted(a, b colsweep.Cols, dst *colsweep.Cols) {
	dst.Reset()
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if a.Xs[i] <= b.Xs[j] {
			dst.Append(a.Xs[i], a.Ys[i], a.IDs[i])
			i++
		} else {
			dst.Append(b.Xs[j], b.Ys[j], b.IDs[j])
			j++
		}
	}
	for ; i < a.Len(); i++ {
		dst.Append(a.Xs[i], a.Ys[i], a.IDs[i])
	}
	for ; j < b.Len(); j++ {
		dst.Append(b.Xs[j], b.Ys[j], b.IDs[j])
	}
}

// JoinFiles computes the ε-join of two partitioned colfiles built over
// the same grid, streaming one partition pair at a time: for every
// R-native cell, the S side is that cell's native chunk merged linearly
// with its halo chunk, then swept with the columnar kernel. Every
// qualifying (r, s) pair is emitted exactly once — r is native in
// exactly one cell, and every s within eps of it lies in that cell's
// native ∪ halo set by the MINDIST rule. Memory use is O(largest
// partition), not O(dataset): chunk lanes are mmap views.
//
// eps must be positive and at most the threshold the files were
// partitioned for. It returns the number of pairs emitted.
func JoinFiles(r, s *ColReader, eps float64, emit colsweep.EmitBatch) (int64, error) {
	if !r.Partitioned() || !s.Partitioned() {
		return 0, fmt.Errorf("dstore: JoinFiles needs partitioned colfiles")
	}
	if eps <= 0 || eps > r.Eps() || eps > s.Eps() {
		return 0, fmt.Errorf("dstore: join eps %v outside (0, %v]", eps, min(r.Eps(), s.Eps()))
	}
	if r.Eps() != s.Eps() || r.Res() != s.Res() || r.Bounds() != s.Bounds() {
		return 0, fmt.Errorf("dstore: colfiles partitioned over different grids")
	}
	sIdx := indexChunks(s)
	var pairs int64
	count := func(ps []tuple.Pair) {
		pairs += int64(len(ps))
		if emit != nil {
			emit(ps)
		}
	}
	b := colsweep.Get()
	defer colsweep.Put(b)
	out := b.Batch(count, false)
	var merged colsweep.Cols
	for i := 0; i < r.NumChunks(); i++ {
		info := r.Info(i)
		if info.Kind != ChunkKindNative {
			continue
		}
		rCols := r.Chunk(i)
		sn, okN := sIdx.native[info.Cell]
		sh, okH := sIdx.halo[info.Cell]
		var sCols colsweep.Cols
		switch {
		case okN && okH:
			mergeSorted(s.Chunk(sn), s.Chunk(sh), &merged)
			sCols = merged
		case okN:
			sCols = s.Chunk(sn)
		case okH:
			sCols = s.Chunk(sh)
		default:
			continue
		}
		colsweep.SweepSorted(&rCols, &sCols, eps, out)
	}
	out.Flush()
	return pairs, nil
}
