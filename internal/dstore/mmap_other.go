//go:build !unix

package dstore

// mapFile reads path into an 8-byte-aligned buffer on platforms
// without a usable mmap syscall.
func mapFile(path string) ([]byte, func() error, error) {
	b, err := readFileAligned(path)
	return b, nil, err
}
