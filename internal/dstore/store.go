package dstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spatialjoin/internal/tuple"
)

// Options tunes a Store.
type Options struct {
	// Fsync syncs the log after every append (crash-durable acks).
	// When false, appends are durable only at checkpoints and rotation.
	Fsync bool
	// SegmentBytes is the log rotation threshold (default 64 MiB).
	SegmentBytes int64
	// MaxSkewSamples bounds the persisted skew history per (R, S, eps)
	// key (default 32).
	MaxSkewSamples int
	// OnAppend, OnFsync, OnSegments and OnCheckpoint feed metrics.
	OnAppend     func(recordBytes int64)
	OnFsync      func()
	OnSegments   func(n int64)
	OnCheckpoint func(seq uint64)
	// Logf receives non-fatal recovery notes (corrupt checkpoint
	// skipped, orphan file removed, ...).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegMax
	}
	if o.MaxSkewSamples <= 0 {
		o.MaxSkewSamples = 32
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// dsFile records which colfile currently backs a dataset on disk, and
// which (rev, gen) state that file contains. seq is the log position
// of the put record that created the file (0 when the file was written
// by a checkpoint, which covers it by construction).
type dsFile struct {
	path     string // relative to the store root
	rev, gen int64
	points   uint64
	seq      uint64
}

// obsoleteFile is a dataset file superseded by the record at seq; it
// may be deleted once a checkpoint covers that record.
type obsoleteFile struct {
	path string
	seq  uint64
}

// Store is the durable dataset store: an append-only record log plus
// checkpoint and columnar dataset files under one directory.
type Store struct {
	dir  string
	opts Options
	log  *wlog

	mu       sync.Mutex
	files    map[string]dsFile
	obsolete []obsoleteFile
	skew     map[string][]SkewSample
	skewKeys []string
	skewSeq  uint64

	telemBlob []byte // latest telemetry snapshot (opaque to dstore)
	telemSeq  uint64

	ckptMu sync.Mutex // serializes WriteCheckpoint
}

// RecoveredDataset is one dataset reconstructed from checkpoint + log.
type RecoveredDataset struct {
	Name     string
	Rev, Gen int64
	Tuples   []tuple.Tuple
}

// RecoveredBatch is one stream mutation batch from the log tail, to be
// re-applied after the engine snapshot is restored.
type RecoveredBatch struct {
	AppliedAt time.Time
	Muts      []StreamMutation
}

// RecoveredStream is one live stream reconstructed from checkpoint +
// log: its durable spec, the engine snapshot blob from the checkpoint
// (nil when the stream was created after it), and the tail batches to
// re-apply in order.
type RecoveredStream struct {
	Spec     StreamSpec
	Snapshot []byte
	Tail     []RecoveredBatch
}

// Recovery is everything Open reconstructed for the service layer.
type Recovery struct {
	NextRev         int64
	Datasets        []RecoveredDataset
	Streams         []RecoveredStream
	Skew            []SkewSample
	TelemSnapshot   []byte // latest telemetry rollup snapshot (nil = none)
	CheckpointSeq   uint64 // log position of the checkpoint used (0 = none)
	ReplayedRecords int64  // records replayed from the log tail
	LastSeq         uint64 // log position after recovery
}

// CheckpointState is the consistent snapshot the service hands to
// WriteCheckpoint. The cursors are the log positions of the last
// record of each class already reflected in the snapshot; replay after
// recovery skips records at or below them.
type CheckpointState struct {
	NextRev     int64
	RegistrySeq uint64
	StreamsSeq  uint64
	Datasets    []DatasetCheckpoint
	Streams     []StreamCheckpoint
}

// DatasetCheckpoint is one dataset's snapshot. Tuples back the rewrite
// of the dataset's colfile when (Rev, Gen) advanced past the file on
// disk; they are only read in that case.
type DatasetCheckpoint struct {
	Name     string
	Rev, Gen int64
	Tuples   []tuple.Tuple
}

// StreamCheckpoint is one stream's snapshot: its spec, an opaque engine
// snapshot (internal/stream's checkpoint format), and the log position
// of the last batch the snapshot includes.
type StreamCheckpoint struct {
	Spec       StreamSpec
	CoveredSeq uint64
	Blob       []byte
}

// Open opens (creating if needed) the store under dir and recovers its
// state from the newest valid checkpoint plus the log tail.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	for _, sub := range []string{"", "wal", "datasets", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, err
		}
	}
	log, err := openLog(filepath.Join(dir, "wal"), logOptions{
		fsync:      opts.Fsync,
		segBytes:   opts.SegmentBytes,
		onAppend:   opts.OnAppend,
		onFsync:    opts.OnFsync,
		onSegments: opts.OnSegments,
	})
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		log:   log,
		files: make(map[string]dsFile),
		skew:  make(map[string][]SkewSample),
	}
	rec, err := s.recover()
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// dsState is the in-flight dataset state during recovery.
type dsState struct {
	rev, gen int64
	tuples   []tuple.Tuple
	file     dsFile
}

// strState is the in-flight stream state during recovery.
type strState struct {
	spec       StreamSpec
	snapshot   []byte
	coveredSeq uint64
	tail       []RecoveredBatch
}

func (s *Store) recover() (*Recovery, error) {
	cks, err := listCheckpoints(filepath.Join(s.dir, "checkpoints"))
	if err != nil {
		return nil, err
	}

	// Restore from the newest checkpoint that validates in full
	// (manifest and every dataset file it references).
	var (
		m        ckptManifest
		blobs    [][]byte
		datasets map[string]*dsState
		streams  map[string]*strState
		strOrder []string
		haveCkpt bool
	)
	for _, path := range cks {
		cm, cb, err := readCheckpointFile(path)
		if err != nil {
			s.opts.Logf("dstore: skipping checkpoint %s: %v", filepath.Base(path), err)
			continue
		}
		ds, err := s.loadCkptDatasets(cm)
		if err != nil {
			s.opts.Logf("dstore: skipping checkpoint %s: %v", filepath.Base(path), err)
			continue
		}
		m, blobs, datasets, haveCkpt = cm, cb, ds, true
		break
	}
	if !haveCkpt {
		m = ckptManifest{NextRev: 0}
		datasets = make(map[string]*dsState)
	}
	streams = make(map[string]*strState)
	for i, cs := range m.Streams {
		streams[cs.Spec.Name] = &strState{spec: cs.Spec, snapshot: blobs[i], coveredSeq: cs.CoveredSeq}
		strOrder = append(strOrder, cs.Spec.Name)
	}
	for _, sample := range m.Skew {
		s.addSkewLocked(sample)
	}
	s.skewSeq = m.SkewSeq
	if len(m.Telem) > 0 {
		s.telemBlob = m.Telem
	}
	s.telemSeq = m.TelemSeq
	nextRev := m.NextRev

	// Replay the log tail. Per-class cursors decide what is already
	// reflected in the checkpoint; replay starts at the lowest cursor
	// and skips covered records per class.
	regSeq, strSeq, skewSeq, telemSeq := m.RegistrySeq, m.StreamsSeq, m.SkewSeq, m.TelemSeq
	from := minCursor(regSeq, strSeq, skewSeq, telemSeq, streams) + 1
	var replayed int64
	putFiles := make(map[string]bool) // files referenced by replayed puts
	replayErr := s.log.Replay(from, func(seq uint64, typ byte, payload []byte) error {
		switch typ {
		case recDatasetPut:
			if seq <= regSeq {
				return nil
			}
			r, err := decodeDatasetPut(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			ts, err := loadTuplesFile(filepath.Join(s.dir, r.File))
			if err != nil {
				return fmt.Errorf("seq %d: dataset %q: %w", seq, r.Name, err)
			}
			datasets[r.Name] = &dsState{
				rev:    r.Rev,
				tuples: ts,
				file:   dsFile{path: r.File, rev: r.Rev, points: r.Points, seq: seq},
			}
			putFiles[r.File] = true
			if r.Rev >= nextRev {
				nextRev = r.Rev + 1
			}
		case recDatasetApply:
			if seq <= regSeq {
				return nil
			}
			r, err := decodeDatasetApply(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			d, ok := datasets[r.Name]
			if !ok {
				return fmt.Errorf("seq %d: apply to unknown dataset %q", seq, r.Name)
			}
			d.tuples = applyMutations(d.tuples, r.Upserts, r.Deletes)
			d.gen = r.Gen
		case recDatasetDelete:
			if seq <= regSeq {
				return nil
			}
			name, err := decodeName(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			delete(datasets, name)
		case recStreamCreate:
			if seq <= strSeq {
				return nil
			}
			spec, err := decodeStreamCreate(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			if _, ok := streams[spec.Name]; !ok {
				strOrder = append(strOrder, spec.Name)
			}
			streams[spec.Name] = &strState{spec: spec}
		case recStreamDelete:
			if seq <= strSeq {
				return nil
			}
			name, err := decodeName(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			delete(streams, name)
		case recStreamBatch:
			r, err := decodeStreamBatch(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			st, ok := streams[r.Name]
			if !ok || seq <= st.coveredSeq {
				return nil // deleted stream, or covered by its snapshot
			}
			st.tail = append(st.tail, RecoveredBatch{AppliedAt: time.Unix(0, r.AppliedAt), Muts: r.Muts})
		case recSkew:
			if seq <= skewSeq {
				return nil
			}
			sample, err := decodeSkew(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			s.addSkewLocked(sample)
			s.skewSeq = seq
		case recTelem:
			if seq <= telemSeq {
				return nil
			}
			blob, err := decodeTelem(payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", seq, err)
			}
			s.telemBlob = blob
			s.telemSeq = seq
			// Telemetry snapshots are continuous latest-wins housekeeping,
			// not part of the mutation tail the replayed-records gauge
			// bounds; counting them would drown the signal.
			return nil
		default:
			s.opts.Logf("dstore: skipping record seq %d of unknown type %d", seq, typ)
			return nil
		}
		replayed++
		return nil
	})
	if replayErr != nil {
		return nil, fmt.Errorf("dstore: log replay: %w", replayErr)
	}

	rec := &Recovery{
		NextRev:         nextRev,
		CheckpointSeq:   m.LastSeq,
		ReplayedRecords: replayed,
		LastSeq:         s.log.LastSeq(),
		Skew:            s.skewHistoryLocked(),
		TelemSnapshot:   s.telemBlob,
	}
	for name, d := range datasets {
		rec.Datasets = append(rec.Datasets, RecoveredDataset{Name: name, Rev: d.rev, Gen: d.gen, Tuples: d.tuples})
		s.files[name] = d.file
	}
	for _, name := range strOrder {
		st, ok := streams[name]
		if !ok {
			continue
		}
		rec.Streams = append(rec.Streams, RecoveredStream{Spec: st.spec, Snapshot: st.snapshot, Tail: st.tail})
	}

	s.gcDatasetFiles(cks, putFiles)
	return rec, nil
}

// minCursor returns the lowest covered log position across all record
// classes. A zero cursor means no record of that class existed at
// snapshot time (later ones necessarily sit above every other cursor),
// so it imposes no bound.
func minCursor(regSeq, strSeq, skewSeq, telemSeq uint64, streams map[string]*strState) uint64 {
	lo := ^uint64(0)
	take := func(c uint64) {
		if c > 0 && c < lo {
			lo = c
		}
	}
	take(regSeq)
	take(strSeq)
	take(skewSeq)
	take(telemSeq)
	for _, st := range streams {
		take(st.coveredSeq)
	}
	if lo == ^uint64(0) {
		return 0
	}
	return lo
}

// loadCkptDatasets materializes every dataset a checkpoint references.
func (s *Store) loadCkptDatasets(m ckptManifest) (map[string]*dsState, error) {
	out := make(map[string]*dsState, len(m.Datasets))
	for _, d := range m.Datasets {
		ts, err := loadTuplesFile(filepath.Join(s.dir, d.File))
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", d.Name, err)
		}
		out[d.Name] = &dsState{
			rev:    d.Rev,
			gen:    d.Gen,
			tuples: ts,
			file:   dsFile{path: d.File, rev: d.Rev, gen: d.Gen, points: d.Points},
		}
	}
	return out, nil
}

func loadTuplesFile(path string) ([]tuple.Tuple, error) {
	r, err := OpenColFile(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Tuples()
}

// applyMutations mirrors the registry's Apply merge exactly: drop every
// tuple whose id is deleted or re-upserted (preserving order), then
// append the upserts.
func applyMutations(ts []tuple.Tuple, ups []tuple.Tuple, dels []int64) []tuple.Tuple {
	drop := make(map[int64]struct{}, len(ups)+len(dels))
	for _, id := range dels {
		drop[id] = struct{}{}
	}
	for _, t := range ups {
		drop[t.ID] = struct{}{}
	}
	out := make([]tuple.Tuple, 0, len(ts)+len(ups))
	for _, t := range ts {
		if _, gone := drop[t.ID]; !gone {
			out = append(out, t)
		}
	}
	return append(out, ups...)
}

// gcDatasetFiles removes dataset files referenced by no surviving
// state: neither the recovered registry, nor any retained checkpoint
// manifest, nor any put record replayed from the tail.
func (s *Store) gcDatasetFiles(ckptPaths []string, putFiles map[string]bool) {
	referenced := make(map[string]bool)
	for _, f := range s.files {
		referenced[f.path] = true
	}
	for p := range putFiles {
		referenced[p] = true
	}
	kept := 0
	for _, path := range ckptPaths {
		if kept >= ckptKeep {
			break
		}
		m, _, err := readCheckpointFile(path)
		if err != nil {
			continue
		}
		kept++
		for _, d := range m.Datasets {
			referenced[d.File] = true
		}
	}
	// Files created by put records that predate the newest checkpoint
	// but survive in the log must stay for the fallback-recovery path.
	s.log.Replay(0, func(seq uint64, typ byte, payload []byte) error {
		if typ != recDatasetPut {
			return nil
		}
		if r, err := decodeDatasetPut(payload); err == nil {
			referenced[r.File] = true
		}
		return nil
	})
	dir := filepath.Join(s.dir, "datasets")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		rel := filepath.Join("datasets", e.Name())
		if !referenced[rel] {
			s.opts.Logf("dstore: removing orphan dataset file %s", e.Name())
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// safeFileName escapes name for use in a file name: ASCII letters,
// digits, '.', '_' and '-' pass through, everything else becomes %XX.
// The mapping is injective, so distinct dataset names never collide.
func safeFileName(name string) string {
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b = append(b, c)
		default:
			b = append(b, fmt.Sprintf("%%%02X", c)...)
		}
	}
	return string(b)
}

func (s *Store) datasetPath(name string, rev, gen int64) string {
	return filepath.Join("datasets", fmt.Sprintf("%s-r%d-g%d.col", safeFileName(name), rev, gen))
}

// LogDatasetPut durably records a wholesale dataset registration: the
// columnar file is written and synced first, then the log record that
// references it. Callers serialize per-registry mutations.
func (s *Store) LogDatasetPut(name string, rev int64, ts []tuple.Tuple) (uint64, error) {
	rel := s.datasetPath(name, rev, 0)
	abs := filepath.Join(s.dir, rel)
	if err := WriteTuplesFile(abs, ts); err != nil {
		return 0, err
	}
	payload := datasetPutRec{Name: name, Rev: rev, File: rel, Points: uint64(len(ts))}.encode(nil)
	seq, err := s.log.Append(recDatasetPut, payload)
	if err != nil {
		os.Remove(abs)
		return 0, err
	}
	s.mu.Lock()
	if old, ok := s.files[name]; ok {
		s.obsolete = append(s.obsolete, obsoleteFile{path: old.path, seq: seq})
	}
	s.files[name] = dsFile{path: rel, rev: rev, points: uint64(len(ts)), seq: seq}
	s.mu.Unlock()
	return seq, nil
}

// LogDatasetApply durably records an incremental mutation batch with
// its post-apply generation counter.
func (s *Store) LogDatasetApply(name string, gen int64, ups []tuple.Tuple, dels []int64) (uint64, error) {
	payload := datasetApplyRec{Name: name, Gen: gen, Upserts: ups, Deletes: dels}.encode(nil)
	return s.log.Append(recDatasetApply, payload)
}

// LogDatasetDelete durably records a dataset drop.
func (s *Store) LogDatasetDelete(name string) (uint64, error) {
	seq, err := s.log.Append(recDatasetDelete, encodeName(nil, name))
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if old, ok := s.files[name]; ok {
		s.obsolete = append(s.obsolete, obsoleteFile{path: old.path, seq: seq})
		delete(s.files, name)
	}
	s.mu.Unlock()
	return seq, nil
}

// LogStreamCreate durably records a stream creation.
func (s *Store) LogStreamCreate(spec StreamSpec) (uint64, error) {
	payload, err := encodeStreamCreate(nil, spec)
	if err != nil {
		return 0, err
	}
	return s.log.Append(recStreamCreate, payload)
}

// LogStreamDelete durably records a stream drop.
func (s *Store) LogStreamDelete(name string) (uint64, error) {
	return s.log.Append(recStreamDelete, encodeName(nil, name))
}

// LogStreamBatch durably records one acked batch of stream mutations
// applied at the given wall-clock time.
func (s *Store) LogStreamBatch(name string, appliedAt time.Time, muts []StreamMutation) (uint64, error) {
	payload := streamBatchRec{Name: name, AppliedAt: appliedAt.UnixNano(), Muts: muts}.encode(nil)
	return s.log.Append(recStreamBatch, payload)
}

// AppendSkew durably records one skew observation for the (r, sname,
// eps) join key and folds it into the bounded in-memory history.
func (s *Store) AppendSkew(r, sname string, eps float64, report any) error {
	raw, err := json.Marshal(report)
	if err != nil {
		return err
	}
	sample := SkewSample{R: r, S: sname, Eps: eps, UnixMS: time.Now().UnixMilli(), Report: raw}
	payload, err := encodeSkew(nil, sample)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq, err := s.log.Append(recSkew, payload)
	if err != nil {
		return err
	}
	s.addSkewLocked(sample)
	s.skewSeq = seq
	return nil
}

// AppendTelemSnapshot durably records the latest telemetry rollup
// snapshot. The blob is opaque to dstore and latest-wins: recovery
// keeps only the highest-sequence snapshot, and checkpoints fold it
// into the manifest so the covering log prefix can truncate.
func (s *Store) AppendTelemSnapshot(blob []byte) error {
	payload := encodeTelem(nil, blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	seq, err := s.log.Append(recTelem, payload)
	if err != nil {
		return err
	}
	s.telemBlob = append([]byte(nil), blob...)
	s.telemSeq = seq
	return nil
}

// TelemSnapshot returns the latest telemetry snapshot (nil = none).
func (s *Store) TelemSnapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.telemBlob
}

func skewKey(r, s string, eps float64) string {
	return fmt.Sprintf("%s\xff%s\xff%g", r, s, eps)
}

func (s *Store) addSkewLocked(sample SkewSample) {
	key := skewKey(sample.R, sample.S, sample.Eps)
	ring, ok := s.skew[key]
	if !ok {
		s.skewKeys = append(s.skewKeys, key)
	}
	ring = append(ring, sample)
	if over := len(ring) - s.opts.MaxSkewSamples; over > 0 {
		ring = append(ring[:0], ring[over:]...)
	}
	s.skew[key] = ring
}

func (s *Store) skewHistoryLocked() []SkewSample {
	var out []SkewSample
	for _, key := range s.skewKeys {
		out = append(out, s.skew[key]...)
	}
	return out
}

// SkewHistory returns every retained skew sample, grouped by join key
// in first-observation order.
func (s *Store) SkewHistory() []SkewSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skewHistoryLocked()
}

// LastSeq returns the log position of the last appended record.
func (s *Store) LastSeq() uint64 { return s.log.LastSeq() }

// WriteCheckpoint persists the snapshot st, prunes old checkpoints,
// deletes dataset files the checkpoint obsoletes, and truncates the
// log through the lowest covered cursor. It returns the log position
// the checkpoint file is named after.
func (s *Store) WriteCheckpoint(st CheckpointState) (uint64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.mu.Lock()
	skew := s.skewHistoryLocked()
	skewSeq := s.skewSeq
	telemBlob := s.telemBlob
	telemSeq := s.telemSeq
	files := make(map[string]dsFile, len(s.files))
	for k, v := range s.files {
		files[k] = v
	}
	s.mu.Unlock()

	// Rewrite the colfile of every dataset whose (rev, gen) moved past
	// what its on-disk file contains, so skipping registry records at
	// or below RegistrySeq on recovery stays correct.
	var deletable []string
	newFiles := make(map[string]dsFile)
	m := ckptManifest{
		NextRev:     st.NextRev,
		RegistrySeq: st.RegistrySeq,
		StreamsSeq:  st.StreamsSeq,
		SkewSeq:     skewSeq,
		Skew:        skew,
		TelemSeq:    telemSeq,
		Telem:       telemBlob,
	}
	replaced := make(map[string]string) // dataset -> captured path the rewrite replaced
	for _, d := range st.Datasets {
		f, ok := files[d.Name]
		if !ok || f.rev != d.Rev || f.gen != d.Gen {
			rel := s.datasetPath(d.Name, d.Rev, d.Gen)
			if err := WriteTuplesFile(filepath.Join(s.dir, rel), d.Tuples); err != nil {
				return 0, err
			}
			// The replaced file is retired only when the put that created
			// it is covered by this checkpoint; a file from a put racing
			// the snapshot (seq > RegistrySeq) is still needed by replay.
			if ok && f.seq <= st.RegistrySeq {
				deletable = append(deletable, f.path)
			}
			replaced[d.Name] = f.path
			f = dsFile{path: rel, rev: d.Rev, gen: d.Gen, points: uint64(len(d.Tuples))}
			newFiles[d.Name] = f
		}
		m.Datasets = append(m.Datasets, ckptDataset{Name: d.Name, Rev: d.Rev, Gen: d.Gen, File: f.path, Points: f.points})
	}
	blobs := make([][]byte, 0, len(st.Streams))
	lowestCover := ^uint64(0)
	takeCover := func(c uint64) {
		if c > 0 && c < lowestCover {
			lowestCover = c
		}
	}
	takeCover(st.RegistrySeq)
	takeCover(st.StreamsSeq)
	takeCover(skewSeq)
	takeCover(telemSeq)
	for _, cs := range st.Streams {
		m.Streams = append(m.Streams, ckptStream{Spec: cs.Spec, CoveredSeq: cs.CoveredSeq})
		blobs = append(blobs, cs.Blob)
		takeCover(cs.CoveredSeq)
	}
	m.LastSeq = s.log.LastSeq()
	if lowestCover == ^uint64(0) || lowestCover > m.LastSeq {
		lowestCover = m.LastSeq
	}

	ckDir := filepath.Join(s.dir, "checkpoints")
	if _, err := writeCheckpointFile(ckDir, m, blobs); err != nil {
		return 0, err
	}

	// The checkpoint is durable: retire superseded checkpoints, dataset
	// files covered by it, and fully-covered log segments.
	if cks, err := listCheckpoints(ckDir); err == nil {
		for _, old := range cks[min(len(cks), ckptKeep):] {
			os.Remove(old)
		}
	}
	s.mu.Lock()
	for name, f := range newFiles {
		// Install the checkpoint-written file only if no put raced the
		// snapshot; a racing put's newer file must stay authoritative.
		if cur, ok := s.files[name]; ok == (replaced[name] != "") && (!ok || cur.path == replaced[name]) {
			s.files[name] = f
		}
	}
	keep := s.obsolete[:0]
	for _, of := range s.obsolete {
		if of.seq <= st.RegistrySeq {
			deletable = append(deletable, of.path)
		} else {
			keep = append(keep, of)
		}
	}
	s.obsolete = keep
	s.mu.Unlock()
	for _, rel := range deletable {
		os.Remove(filepath.Join(s.dir, rel))
	}
	if err := s.log.TruncateThrough(lowestCover); err != nil {
		return 0, err
	}
	if s.opts.OnCheckpoint != nil {
		s.opts.OnCheckpoint(m.LastSeq)
	}
	return m.LastSeq, nil
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error { return s.log.Sync() }

// Close syncs and closes the log. The store must not be used after.
func (s *Store) Close() error { return s.log.Close() }
