package dstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Log record types. The payload formats are versioned implicitly by the
// segment header version: a format change bumps segVersion.
const (
	recDatasetPut    byte = 1 // dataset registered/replaced wholesale
	recDatasetApply  byte = 2 // incremental upserts/deletes on a dataset
	recDatasetDelete byte = 3 // dataset dropped
	recStreamCreate  byte = 4 // stream engine created
	recStreamDelete  byte = 5 // stream engine dropped
	recStreamBatch   byte = 6 // one acked batch of stream mutations
	recSkew          byte = 7 // an observed per-(R,S,eps) skew report
	recTelem         byte = 8 // latest-wins telemetry rollup snapshot (opaque)
)

var errShortRecord = errors.New("dstore: truncated record payload")

// cursor is a sticky-error reader over a record payload. Every get
// method returns the zero value after the first failure, so decoders
// can run straight-line and check err once at the end.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errShortRecord
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil || len(c.b) < 2 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// bytes returns the next n payload bytes without copying. The caller
// must copy before the underlying buffer is reused.
func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) str16() string { return string(c.bytes(int(c.u16()))) }

// count reads a u32 element count and validates it against the bytes
// remaining, assuming each element needs at least minElem bytes. This
// keeps a corrupt count from triggering a huge allocation.
func (c *cursor) count(minElem int) int {
	n := int(c.u32())
	if c.err != nil {
		return 0
	}
	if minElem > 0 && n > len(c.b)/minElem {
		c.fail()
		return 0
	}
	return n
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("dstore: %d trailing bytes after record", len(c.b))
	}
	return nil
}

func appendStr16(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// --- recDatasetPut ---

// datasetPutRec records a wholesale dataset registration: the tuples
// themselves live in the columnar file at File (relative to the store
// root), written and fsynced before this record is appended.
type datasetPutRec struct {
	Name   string
	Rev    int64
	File   string
	Points uint64
}

func (r datasetPutRec) encode(b []byte) []byte {
	b = appendStr16(b, r.Name)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Rev))
	b = appendStr16(b, r.File)
	return binary.LittleEndian.AppendUint64(b, r.Points)
}

func decodeDatasetPut(p []byte) (datasetPutRec, error) {
	c := cursor{b: p}
	r := datasetPutRec{Name: c.str16(), Rev: c.i64(), File: c.str16(), Points: c.u64()}
	return r, c.done()
}

// --- recDatasetApply ---

// datasetApplyRec records an incremental mutation batch against a
// registered dataset, carrying the post-apply generation counter so a
// restart restores exactly the generation the plan cache keyed on.
type datasetApplyRec struct {
	Name    string
	Gen     int64
	Upserts []tuple.Tuple
	Deletes []int64
}

func (r datasetApplyRec) encode(b []byte) []byte {
	b = appendStr16(b, r.Name)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Gen))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Upserts)))
	for _, t := range r.Upserts {
		b = binary.LittleEndian.AppendUint64(b, uint64(t.ID))
		b = appendF64(b, t.Pt.X)
		b = appendF64(b, t.Pt.Y)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Payload)))
		b = append(b, t.Payload...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Deletes)))
	for _, id := range r.Deletes {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	return b
}

func decodeDatasetApply(p []byte) (datasetApplyRec, error) {
	c := cursor{b: p}
	r := datasetApplyRec{Name: c.str16(), Gen: c.i64()}
	nup := c.count(28) // id + x + y + payLen
	if nup > 0 {
		r.Upserts = make([]tuple.Tuple, 0, nup)
	}
	for i := 0; i < nup && c.err == nil; i++ {
		t := tuple.Tuple{ID: c.i64(), Pt: geom.Point{X: c.f64(), Y: c.f64()}}
		if n := int(c.u32()); n > 0 {
			t.Payload = append([]byte(nil), c.bytes(n)...)
		}
		r.Upserts = append(r.Upserts, t)
	}
	ndel := c.count(8)
	if ndel > 0 {
		r.Deletes = make([]int64, 0, ndel)
	}
	for i := 0; i < ndel && c.err == nil; i++ {
		r.Deletes = append(r.Deletes, c.i64())
	}
	return r, c.done()
}

// --- recDatasetDelete / recStreamDelete ---

func encodeName(b []byte, name string) []byte { return appendStr16(b, name) }

func decodeName(p []byte) (string, error) {
	c := cursor{b: p}
	name := c.str16()
	return name, c.done()
}

// --- recStreamCreate ---

// StreamSpec is the durable description of a stream engine; it mirrors
// the service-level stream configuration and is stored as JSON so new
// optional fields stay backward compatible.
type StreamSpec struct {
	Name           string  `json:"name"`
	Eps            float64 `json:"eps"`
	MinX           float64 `json:"min_x"`
	MinY           float64 `json:"min_y"`
	MaxX           float64 `json:"max_x"`
	MaxY           float64 `json:"max_y"`
	GridRes        float64 `json:"grid_res,omitempty"`
	Policy         string  `json:"policy,omitempty"`
	TTLMillis      int64   `json:"ttl_ms,omitempty"`
	RebalanceEvery int     `json:"rebalance_every,omitempty"`
	RDataset       string  `json:"r_dataset,omitempty"`
	SDataset       string  `json:"s_dataset,omitempty"`
}

func encodeStreamCreate(b []byte, spec StreamSpec) ([]byte, error) {
	j, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(j)))
	return append(b, j...), nil
}

func decodeStreamCreate(p []byte) (StreamSpec, error) {
	c := cursor{b: p}
	j := c.bytes(int(c.u32()))
	var spec StreamSpec
	if c.err == nil {
		if err := json.Unmarshal(j, &spec); err != nil {
			return spec, fmt.Errorf("dstore: stream spec: %w", err)
		}
	}
	return spec, c.done()
}

// --- recStreamBatch ---

const (
	mutDelete = 1 << 0 // mutation removes the id instead of upserting
	mutSetS   = 1 << 1 // mutation targets set S (else R)
)

// StreamMutation is one durable stream mutation; Set is 0 for R, 1 for S.
type StreamMutation struct {
	Set    uint8
	Delete bool
	Tuple  tuple.Tuple
}

// streamBatchRec records one acked Apply batch with the wall-clock time
// it was applied at, so TTL expiry replays deterministically.
type streamBatchRec struct {
	Name      string
	AppliedAt int64 // UnixNano
	Muts      []StreamMutation
}

func (r streamBatchRec) encode(b []byte) []byte {
	b = appendStr16(b, r.Name)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.AppliedAt))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Muts)))
	for _, m := range r.Muts {
		var flags byte
		if m.Delete {
			flags |= mutDelete
		}
		if m.Set != 0 {
			flags |= mutSetS
		}
		b = append(b, flags)
		b = binary.LittleEndian.AppendUint64(b, uint64(m.Tuple.ID))
		b = appendF64(b, m.Tuple.Pt.X)
		b = appendF64(b, m.Tuple.Pt.Y)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Tuple.Payload)))
		b = append(b, m.Tuple.Payload...)
	}
	return b
}

func decodeStreamBatch(p []byte) (streamBatchRec, error) {
	c := cursor{b: p}
	r := streamBatchRec{Name: c.str16(), AppliedAt: c.i64()}
	n := c.count(29) // flags + id + x + y + payLen
	if n > 0 {
		r.Muts = make([]StreamMutation, 0, n)
	}
	for i := 0; i < n && c.err == nil; i++ {
		flags := c.u8()
		m := StreamMutation{
			Delete: flags&mutDelete != 0,
			Tuple:  tuple.Tuple{ID: c.i64(), Pt: geom.Point{X: c.f64(), Y: c.f64()}},
		}
		if flags&mutSetS != 0 {
			m.Set = 1
		}
		if pn := int(c.u32()); pn > 0 {
			m.Tuple.Payload = append([]byte(nil), c.bytes(pn)...)
		}
		r.Muts = append(r.Muts, m)
	}
	return r, c.done()
}

// --- recSkew ---

// SkewSample is one persisted skew observation for a (R, S, eps) join
// key: the planner-history seed the feedback-driven planner will learn
// from across restarts. Report is stored as raw JSON so dstore does not
// depend on the obs package's struct layout.
type SkewSample struct {
	R      string          `json:"r"`
	S      string          `json:"s"`
	Eps    float64         `json:"eps"`
	UnixMS int64           `json:"unix_ms"`
	Report json.RawMessage `json:"report"`
}

func encodeSkew(b []byte, s SkewSample) ([]byte, error) {
	j, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(j)))
	return append(b, j...), nil
}

func decodeSkew(p []byte) (SkewSample, error) {
	c := cursor{b: p}
	j := c.bytes(int(c.u32()))
	var s SkewSample
	if c.err == nil {
		if err := json.Unmarshal(j, &s); err != nil {
			return s, fmt.Errorf("dstore: skew sample: %w", err)
		}
	}
	return s, c.done()
}

// --- recTelem ---

// The telemetry snapshot is an opaque blob owned by the service layer
// (internal/telem's JSON form); dstore only frames it. Records are
// latest-wins: replay keeps the highest-sequence blob.

func encodeTelem(b []byte, blob []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
	return append(b, blob...)
}

func decodeTelem(p []byte) ([]byte, error) {
	c := cursor{b: p}
	blob := append([]byte(nil), c.bytes(int(c.u32()))...)
	return blob, c.done()
}
