package dstore

import (
	"bytes"
	"testing"
)

func TestTelemSnapshotLogReplay(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec.TelemSnapshot != nil {
		t.Fatalf("fresh store has telemetry: %q", rec.TelemSnapshot)
	}
	if err := st.AppendTelemSnapshot([]byte(`{"gen":1}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.AppendTelemSnapshot([]byte(`{"gen":2}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := st.TelemSnapshot(); !bytes.Equal(got, []byte(`{"gen":2}`)) {
		t.Fatalf("live snapshot = %q", got)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Latest-wins across replay.
	st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if !bytes.Equal(rec2.TelemSnapshot, []byte(`{"gen":2}`)) {
		t.Fatalf("recovered snapshot = %q, want gen:2", rec2.TelemSnapshot)
	}
}

func TestTelemSnapshotCheckpointed(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.AppendTelemSnapshot([]byte(`{"gen":1}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := st.WriteCheckpoint(CheckpointState{NextRev: 1}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The checkpoint alone must carry the blob (log truncated through it).
	st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !bytes.Equal(rec2.TelemSnapshot, []byte(`{"gen":1}`)) {
		t.Fatalf("checkpoint snapshot = %q, want gen:1", rec2.TelemSnapshot)
	}

	// A record appended after the checkpoint supersedes it on replay.
	if err := st2.AppendTelemSnapshot([]byte(`{"gen":9}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st3.Close()
	if !bytes.Equal(rec3.TelemSnapshot, []byte(`{"gen":9}`)) {
		t.Fatalf("post-checkpoint snapshot = %q, want gen:9", rec3.TelemSnapshot)
	}
}
