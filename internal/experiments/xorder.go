package experiments

import (
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
)

// XOrder is the ablation of Algorithm 1's edge traversal order
// (Section 5.2): the paper argues that visiting touching-point edges
// before side edges — and heavier edges first — minimises the extra
// replication that marked side edges induce through supplementary areas.
// The experiment compares replication under the paper's order, a
// weight-only order, and a fixed positional order, for LPiB on every
// combination. All three orders are exact (correct and duplicate-free);
// only the amount of replication differs.
func XOrder(sc Scale) []*Table {
	t := &Table{
		ID:    "xorder",
		Title: "Algorithm 1 edge-order ablation (replicated objects, LPiB)",
		Columns: []string{
			"combination", "paper order", "weight-only", "index order",
			"weight/paper", "index/paper",
		},
	}
	for _, combo := range Combos() {
		rs := combo.R(sc.N)
		ss := combo.S(sc.N)
		repl := func(order agreements.Order) int64 {
			res := mustCore(rs, ss, core.Config{
				Eps: DefaultEps, Policy: agreements.LPiB, Order: order,
				Workers: sc.Workers, Partitions: sc.Partitions, Seed: sc.Seed,
			})
			return res.Replicated()
		}
		paper := repl(agreements.OrderPaper)
		weight := repl(agreements.OrderWeightOnly)
		index := repl(agreements.OrderIndex)
		t.Rows = append(t.Rows, []string{
			combo.Name,
			fmtCount(paper), fmtCount(weight), fmtCount(index),
			fmtRatio(weight, paper), fmtRatio(index, paper),
		})
	}
	return []*Table{t}
}
