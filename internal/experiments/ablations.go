package experiments

import (
	"fmt"

	"spatialjoin"
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
	"spatialjoin/internal/tuple"
)

// Table6 reproduces Table 6: the duplicate-free assignment versus the
// simplified (duplicate-producing) assignment followed by a parallel
// distinct() pass, for LPiB and DIFF on S1⋈S2.
func Table6(sc Scale) []*Table {
	t := &Table{
		ID:    "table6",
		Title: "duplicate-free vs non-duplicate-free with deduplication (S1xS2)",
		Columns: []string{
			"method", "duplicate-free", "dedup-after", "dedup/dup-free", "duplicates removed",
		},
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	for _, pol := range []agreements.Policy{agreements.LPiB, agreements.DIFF} {
		cfg := core.Config{
			Eps:     DefaultEps,
			Policy:  pol,
			Workers: sc.Workers, Partitions: sc.Partitions,
			Seed: sc.Seed,
		}
		dupFree := mustCore(rs, ss, cfg)
		cfg.Simple = true
		withDedup := mustCore(rs, ss, cfg)
		if dupFree.Results != withDedup.Results || dupFree.Checksum != withDedup.Checksum {
			panic(fmt.Sprintf("table6: variants disagree: %d vs %d results", dupFree.Results, withDedup.Results))
		}
		t.Rows = append(t.Rows, []string{
			pol.String(),
			fmtDur(dupFree.SimulatedTime()),
			fmtDur(withDedup.SimulatedTime()),
			fmt.Sprintf("%.1fx", float64(withDedup.SimulatedTime())/float64(dupFree.SimulatedTime())),
			fmtCount(withDedup.DedupInput - withDedup.Results),
		})
	}
	return []*Table{t}
}

func mustCore(rs, ss []tuple.Tuple, cfg core.Config) *core.Result {
	res, err := core.Join(rs, ss, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// Table7 reproduces Table 7: execution time of LPiB and DIFF with
// hash-based versus LPT assignment of cells to workers, for S1⋈S2 at x4
// size and R2⋈R1.
func Table7(sc Scale) []*Table {
	t := &Table{
		ID:    "table7",
		Title: "hash vs LPT assignment of cells to workers",
		Columns: []string{
			"workload", "method", "hash", "LPT", "LPT gain",
			"hash max-part", "LPT max-part", "balance gain",
		},
	}
	workloads := []struct {
		name   string
		rs, ss []tuple.Tuple
	}{
		{"S1xS2 x4", Combos()[0].R(4 * sc.N), Combos()[0].S(4 * sc.N)},
		{"R2xR1", Combos()[2].R(sc.N), Combos()[2].S(sc.N)},
	}
	for _, w := range workloads {
		for _, algo := range []spatialjoin.Algorithm{spatialjoin.AdaptiveLPiB, spatialjoin.AdaptiveDIFF} {
			opt := sc.baseOptions(DefaultEps, algo)
			hash := sc.run(w.rs, w.ss, opt)
			opt.UseLPT = true
			lptRep := sc.run(w.rs, w.ss, opt)
			gain := 1 - float64(lptRep.SimulatedTime)/float64(hash.SimulatedTime)
			// The wall-time gain is noise-prone at laptop scale; the
			// deterministic load-balance gain (largest per-partition
			// Σ|R_c|·|S_c|) shows LPT's effect directly.
			balance := 1 - float64(lptRep.MaxPartitionCost)/float64(hash.MaxPartitionCost)
			t.Rows = append(t.Rows, []string{
				w.name,
				algo.String(),
				fmtDur(hash.SimulatedTime),
				fmtDur(lptRep.SimulatedTime),
				fmt.Sprintf("%+.1f%%", gain*100),
				fmtCount(hash.MaxPartitionCost),
				fmtCount(lptRep.MaxPartitionCost),
				fmt.Sprintf("%+.1f%%", balance*100),
			})
		}
	}
	return []*Table{t}
}
