package experiments

import (
	"fmt"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/tuple"
)

// RunningExamplePoints reconstructs the paper's Figure 2 running example:
// a 2×2 grid of cells {A, B, C, D} with 8 R points and 8 S points whose
// replication pattern under universal replication reproduces Table 1 of
// the paper exactly (12 replicated R objects with per-cell costs
// 15/4/10/12, versus 13 replicated S objects with costs 6/18/10/8).
//
// Cell layout (tile 4, ε 1): A = [0,4]×[4,8], B = [4,8]×[4,8],
// C = [4,8]×[0,4], D = [0,4]×[0,4]; the common corner is (4,4).
func RunningExamplePoints() (rs, ss []tuple.Tuple, g *grid.Grid) {
	g = grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}, 1, 4)
	pts := func(base int64, ps ...geom.Point) []tuple.Tuple {
		out := make([]tuple.Tuple, len(ps))
		for i, p := range ps {
			out[i] = tuple.Tuple{ID: base + int64(i) + 1, Pt: p}
		}
		return out
	}
	rs = pts(0,
		geom.Point{X: 2, Y: 4.5},   // r1 ∈ A → D
		geom.Point{X: 4.5, Y: 4.5}, // r2 ∈ B → A, C, D
		geom.Point{X: 6, Y: 6},     // r3 ∈ B (not replicated)
		geom.Point{X: 6, Y: 4.5},   // r4 ∈ B → C
		geom.Point{X: 4.5, Y: 3.5}, // r5 ∈ C → A, B, D
		geom.Point{X: 4.5, Y: 2},   // r6 ∈ C → D
		geom.Point{X: 3.2, Y: 3.2}, // r7 ∈ D → A, C
		geom.Point{X: 2, Y: 3.5},   // r8 ∈ D → A
	)
	ss = pts(100,
		geom.Point{X: 3.5, Y: 6},   // s1 ∈ A → B
		geom.Point{X: 3.5, Y: 7},   // s2 ∈ A → B
		geom.Point{X: 3.5, Y: 4.5}, // s3 ∈ A → B, C, D
		geom.Point{X: 4.5, Y: 6},   // s4 ∈ B → A
		geom.Point{X: 4.3, Y: 3.7}, // s5 ∈ C → A, B, D
		geom.Point{X: 6, Y: 2},     // s6 ∈ C (not replicated)
		geom.Point{X: 3.6, Y: 3.6}, // s7 ∈ D → A, B, C
		geom.Point{X: 3.5, Y: 2},   // s8 ∈ D → C
	)
	return rs, ss, g
}

// cellName maps the running example's cell ids to the paper's letters.
// With the grid above: id 0 = D (0,0), id 1 = C (1,0), id 2 = A (0,1),
// id 3 = B (1,1).
func cellName(id int) string {
	return map[int]string{0: "D", 1: "C", 2: "A", 3: "B"}[id]
}

// Table1 reproduces the paper's Table 1: per-cell replication counts and
// worst-case join cost when replicating the R set universally versus the
// S set universally, on the Figure 2 running example.
func Table1(Scale) []*Table {
	rs, ss, g := RunningExamplePoints()
	var tables []*Table
	for _, variant := range []struct {
		name       string
		replicateR bool
	}{
		{"Universal replication of R set", true},
		{"Universal replication of S set", false},
	} {
		// native and replicated counts per cell and set.
		native := make([][2]int, g.NumCells())
		replIn := make([][2]int, g.NumCells())
		replicated := 0
		assign := func(ts []tuple.Tuple, set tuple.Set, repl bool) {
			var buf []int
			for _, t := range ts {
				buf = replicate.Universal(g, t.Pt, repl, buf[:0])
				native[buf[0]][set]++
				for _, id := range buf[1:] {
					replIn[id][set]++
					replicated++
				}
			}
		}
		assign(rs, tuple.R, variant.replicateR)
		assign(ss, tuple.S, !variant.replicateR)

		t := &Table{
			ID:    "table1",
			Title: variant.name,
			Columns: []string{
				"cell", "native R", "native S", "replicated in", "cost (r*s)",
			},
		}
		total := 0
		// Paper order: A, B, C, D.
		for _, id := range []int{2, 3, 1, 0} {
			r := native[id][tuple.R] + replIn[id][tuple.R]
			s := native[id][tuple.S] + replIn[id][tuple.S]
			cost := r * s
			total += cost
			t.Rows = append(t.Rows, []string{
				cellName(id),
				fmt.Sprintf("%d", native[id][tuple.R]),
				fmt.Sprintf("%d", native[id][tuple.S]),
				fmt.Sprintf("%d", replIn[id][tuple.R]+replIn[id][tuple.S]),
				fmt.Sprintf("%d", cost),
			})
		}
		t.Rows = append(t.Rows, []string{
			"total", "", "",
			fmt.Sprintf("%d", replicated),
			fmt.Sprintf("%d", total),
		})
		tables = append(tables, t)
	}
	return tables
}
