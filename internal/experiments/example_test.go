package experiments

import (
	"testing"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// exampleStats loads the running example's 16 points as exhaustive
// statistics (the "sample" is the full data set).
func exampleStats(t *testing.T) (*grid.Stats, *grid.Grid) {
	t.Helper()
	rs, ss, g := RunningExamplePoints()
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)
	return st, g
}

// posOf returns the quartet position of the paper's cell letter within
// the central quartet (1, 1) of the running example grid.
// Layout: A = TL, B = TR, C = BR, D = BL.
func posOf(letter string) grid.Pos {
	return map[string]grid.Pos{"A": grid.TL, "B": grid.TR, "C": grid.BR, "D": grid.BL}[letter]
}

// Example 4.3 of the paper: between cells A and D, the replication area
// holds 2 S points (s3, s7) and 3 R points (r1, r7, r8), so LPiB chooses
// the agreement type α_S.
func TestPaperExample43LPiB(t *testing.T) {
	st, g := exampleStats(t)
	// A = cell (0,1), D = cell (0,0); direction A->D is South.
	aID := g.CellID(0, 1)
	dID := g.CellID(0, 0)
	if candR := st.Candidates(aID, grid.DirS, tuple.R) + st.Candidates(dID, grid.DirN, tuple.R); candR != 3 {
		t.Fatalf("R candidates between A and D = %d, want 3 (r1, r7, r8)", candR)
	}
	if candS := st.Candidates(aID, grid.DirS, tuple.S) + st.Candidates(dID, grid.DirN, tuple.S); candS != 2 {
		t.Fatalf("S candidates between A and D = %d, want 2 (s3, s7)", candS)
	}
	gr := agreements.Build(st, agreements.LPiB)
	if got := gr.Sub(1, 1).Type(posOf("A"), posOf("D")); got != tuple.S {
		t.Fatalf("LPiB agreement A-D = %v, want S (Example 4.3)", got)
	}
}

// Example 4.3 continued: DIFF considers cell A (|1-3| = 2) over cell D
// (|2-2| = 0) and picks A's minority set, R.
func TestPaperExample43DIFF(t *testing.T) {
	st, g := exampleStats(t)
	aStats := st.At(g.CellID(0, 1))
	if aStats.Total[tuple.R] != 1 || aStats.Total[tuple.S] != 3 {
		t.Fatalf("cell A totals = %v, want 1 R / 3 S", aStats.Total)
	}
	dStats := st.At(g.CellID(0, 0))
	if dStats.Total[tuple.R] != 2 || dStats.Total[tuple.S] != 2 {
		t.Fatalf("cell D totals = %v, want 2 R / 2 S", dStats.Total)
	}
	gr := agreements.Build(st, agreements.DIFF)
	if got := gr.Sub(1, 1).Type(posOf("A"), posOf("D")); got != tuple.R {
		t.Fatalf("DIFF agreement A-D = %v, want R (Example 4.3)", got)
	}
}

// Example 4.4: with the LPiB instantiation, edge e_BA has type α_R and
// weight 1·3 = 3 (one replicated R point r2 times three S points in A),
// and edge e_CB has type α_S and weight 1·3 = 3 (s5 times three R points
// in B).
func TestPaperExample44Weights(t *testing.T) {
	st, _ := exampleStats(t)
	gr := agreements.Build(st, agreements.LPiB)
	sub := gr.Sub(1, 1)

	if got := sub.Type(posOf("B"), posOf("A")); got != tuple.R {
		t.Fatalf("agreement B-A = %v, want R", got)
	}
	if w := sub.Weight(posOf("B"), posOf("A")); w != 3 {
		t.Fatalf("w(e_BA) = %d, want 3 (Example 4.4)", w)
	}
	if got := sub.Type(posOf("C"), posOf("B")); got != tuple.S {
		t.Fatalf("agreement C-B = %v, want S", got)
	}
	if w := sub.Weight(posOf("C"), posOf("B")); w != 3 {
		t.Fatalf("w(e_CB) = %d, want 3 (Example 4.4)", w)
	}
}

// The motivation of Section 3.2, measured: on the running example the
// adaptive assignment must replicate fewer points than either universal
// choice (12 and 13 respectively) while producing the exact join result.
func TestRunningExampleAdaptiveBeatsUniversal(t *testing.T) {
	rs, ss, g := RunningExamplePoints()
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)

	for _, pol := range []agreements.Policy{agreements.LPiB, agreements.DIFF} {
		gr := agreements.Build(st, pol)
		repl := 0
		perCell := make(map[int][2][]tuple.Tuple)
		assign := func(ts []tuple.Tuple, set tuple.Set) {
			var buf []int
			for _, tu := range ts {
				buf = replicate.Adaptive(gr, tu.Pt, set, buf[:0])
				repl += len(buf) - 1
				for _, id := range buf {
					pc := perCell[id]
					pc[set] = append(pc[set], tu)
					perCell[id] = pc
				}
			}
		}
		assign(rs, tuple.R)
		assign(ss, tuple.S)
		if repl >= 12 {
			t.Errorf("%v: adaptive replicated %d points, must beat universal R's 12", pol, repl)
		}

		// Exactness on the example.
		var got, want sweep.Counter
		for _, pc := range perCell {
			sweep.NestedLoop(pc[tuple.R], pc[tuple.S], g.Eps, got.Emit)
		}
		sweep.NestedLoop(rs, ss, g.Eps, want.Emit)
		if got.N != want.N || got.Checksum != want.Checksum {
			t.Errorf("%v: adaptive join on the running example: %d results, want %d", pol, got.N, want.N)
		}
		t.Logf("%v replicates %d points (vs 12 for UNI(R), 13 for UNI(S))", pol, repl)
	}
}
