package experiments

import (
	"fmt"

	"spatialjoin"
)

// epsCell is one measured configuration of the ε sweep.
type epsCell struct {
	algo spatialjoin.Algorithm
	eps  float64
	rep  *spatialjoin.Report
}

// epsSweepCache memoises the ε sweep per (scale, combo) so that Fig10,
// Fig11, Fig12 and Table4 — four views of the same runs — measure once.
// Experiments execute sequentially; no locking needed.
var epsSweepCache = map[string][]epsCell{}

// epsSweep measures every chart algorithm over the ε sweep for one combo.
func epsSweep(sc Scale, combo Combo) []epsCell {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", combo.Name, sc.N, sc.Workers, sc.Partitions, sc.Seed)
	if cached, ok := epsSweepCache[key]; ok {
		return cached
	}
	rs := combo.R(sc.N)
	ss := combo.S(sc.N)
	var out []epsCell
	for _, eps := range EpsSweep {
		for _, algo := range ChartAlgorithms() {
			rep := sc.run(rs, ss, sc.baseOptions(eps, algo))
			out = append(out, epsCell{algo: algo, eps: eps, rep: rep})
		}
	}
	epsSweepCache[key] = out
	return out
}

// sweepCombos returns the two data set combinations of Figures 10-12.
func sweepCombos() []Combo { return Combos()[:2] } // S1xS2 and R1xS1

// epsSweepTable renders one metric of the sweep as a table with one row
// per algorithm and one column per ε.
func epsSweepTable(sc Scale, combo Combo, id, title string, metric func(*spatialjoin.Report) string) *Table {
	cells := epsSweep(sc, combo)
	t := &Table{ID: id, Title: fmt.Sprintf("%s (%s)", title, combo.Name)}
	t.Columns = []string{"algorithm"}
	for _, eps := range EpsSweep {
		t.Columns = append(t.Columns, fmt.Sprintf("eps=%g", eps))
	}
	for _, algo := range ChartAlgorithms() {
		row := []string{algo.String()}
		for _, eps := range EpsSweep {
			for _, c := range cells {
				if c.algo == algo && c.eps == eps {
					row = append(row, metric(c.rep))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10 reproduces Figure 10: replicated objects vs ε, for S1⋈S2 (a) and
// R1⋈S1 (b).
func Fig10(sc Scale) []*Table {
	var out []*Table
	for i, combo := range sweepCombos() {
		out = append(out, epsSweepTable(sc, combo, fmt.Sprintf("fig10%c", 'a'+i),
			"replicated objects vs eps",
			func(r *spatialjoin.Report) string { return fmtCount(r.Replicated()) }))
	}
	return out
}

// Fig11 reproduces Figure 11: shuffle remote reads vs ε.
func Fig11(sc Scale) []*Table {
	var out []*Table
	for i, combo := range sweepCombos() {
		out = append(out, epsSweepTable(sc, combo, fmt.Sprintf("fig11%c", 'a'+i),
			"shuffle remote reads vs eps",
			func(r *spatialjoin.Report) string { return fmtBytes(r.ShuffleRemoteBytes) }))
	}
	return out
}

// Fig12 reproduces Figure 12: execution time vs ε.
func Fig12(sc Scale) []*Table {
	var out []*Table
	for i, combo := range sweepCombos() {
		out = append(out, epsSweepTable(sc, combo, fmt.Sprintf("fig12%c", 'a'+i),
			"execution time vs eps",
			func(r *spatialjoin.Report) string { return fmtDur(r.SimulatedTime) }))
	}
	return out
}

// Fig1b reproduces Figure 1b: the relative overhead in replicated objects
// of PBSM (both universal choices) over adaptive replication, per data
// set combination.
func Fig1b(sc Scale) []*Table {
	t := &Table{
		ID:    "fig1b",
		Title: "relative replication overhead of PBSM over adaptive (LPiB)",
		Columns: []string{
			"combination", "LPiB repl", "UNI(R) repl", "UNI(S) repl",
			"UNI(R)/LPiB", "UNI(S)/LPiB", "best-UNI/LPiB",
		},
	}
	for _, combo := range Combos() {
		rs := combo.R(sc.N)
		ss := combo.S(sc.N)
		adaptive := sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.AdaptiveLPiB))
		uniR := sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.PBSMUniR))
		uniS := sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.PBSMUniS))
		best := uniR.Replicated()
		if uniS.Replicated() < best {
			best = uniS.Replicated()
		}
		t.Rows = append(t.Rows, []string{
			combo.Name,
			fmtCount(adaptive.Replicated()),
			fmtCount(uniR.Replicated()),
			fmtCount(uniS.Replicated()),
			fmtRatio(uniR.Replicated(), adaptive.Replicated()),
			fmtRatio(uniS.Replicated(), adaptive.Replicated()),
			fmtRatio(best, adaptive.Replicated()),
		})
	}
	return []*Table{t}
}

// Table4 reproduces Table 4: join selectivity and result counts over the
// ε sweep (S1⋈S2 and R1⋈S1) and over the data size sweep (S1⋈S2).
func Table4(sc Scale) []*Table {
	var out []*Table
	for _, combo := range sweepCombos() {
		cells := epsSweep(sc, combo)
		t := &Table{
			ID:      "table4",
			Title:   fmt.Sprintf("selectivity vs eps (%s)", combo.Name),
			Columns: []string{"eps", "selectivity", "join results"},
		}
		for _, eps := range EpsSweep {
			for _, c := range cells {
				if c.algo == spatialjoin.AdaptiveLPiB && c.eps == eps {
					t.Rows = append(t.Rows, []string{
						fmt.Sprintf("%g", eps),
						fmtSel(c.rep.Selectivity(sc.N, sc.N)),
						fmtCount(c.rep.Results),
					})
				}
			}
		}
		out = append(out, t)
	}
	// Size sweep: selectivity should stay flat while results grow ~x².
	t := &Table{
		ID:      "table4",
		Title:   "selectivity vs data size (S1xS2)",
		Columns: []string{"size", "selectivity", "join results"},
	}
	for _, factor := range SizeSweep {
		n := sc.N * factor
		rep := sc.run(Combos()[0].R(n), Combos()[0].S(n), sc.baseOptions(DefaultEps, spatialjoin.AdaptiveLPiB))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("x%d", factor),
			fmtSel(rep.Selectivity(n, n)),
			fmtCount(rep.Results),
		})
	}
	return append(out, t)
}
