package experiments

import (
	"fmt"
	"math/rand"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/extjoin"
	"spatialjoin/internal/geom"
)

// ExtentSweep is the maximum object extent (relative to ε) probed by the
// xobjects experiment: the bigger the objects, the more the effective
// threshold — and with it replication — inflates.
var ExtentSweep = []float64{0, 0.5, 1, 2, 4}

// XObjects evaluates the extended polyline/polygon join: for growing
// object extents it reports replication and execution time for the
// adaptive strategy versus universal replication, plus the effective
// centre threshold.
func XObjects(sc Scale) []*Table {
	t := &Table{
		ID:    "xobjects",
		Title: "extended object join: adaptive vs universal vs object extent",
		Columns: []string{
			"extent/eps", "eff. eps", "results",
			"adaptive repl", "UNI(R) repl", "UNI/adaptive", "adaptive time", "UNI(R) time",
		},
	}
	// Object counts scaled down: exact segment-distance refinement is an
	// order of magnitude heavier per candidate than point distance.
	n := sc.N / 4
	if n < 1000 {
		n = 1000
	}
	for _, rel := range ExtentSweep {
		extent := rel * DefaultEps
		rs := objectWorkload(1, n, extent)
		ss := objectWorkload(2, n, extent)

		cfg := extjoin.Config{
			Eps: DefaultEps, Workers: sc.Workers, Partitions: sc.Partitions,
			Seed: sc.Seed, NetBandwidth: sc.netBandwidth(),
		}
		cfgA := cfg
		cfgA.Strategy = extjoin.Adaptive
		adaptive := mustExt(rs, ss, cfgA)
		cfgU := cfg
		cfgU.Strategy = extjoin.UniversalR
		uni := mustExt(rs, ss, cfgU)
		if adaptive.Results != uni.Results || adaptive.Checksum != uni.Checksum {
			panic(fmt.Sprintf("xobjects: strategies disagree at extent %v: %d vs %d",
				extent, adaptive.Results, uni.Results))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", rel),
			fmt.Sprintf("%.2f", adaptive.EffectiveEps),
			fmtCount(adaptive.Results),
			fmtCount(adaptive.Replicated()),
			fmtCount(uni.Replicated()),
			fmtRatio(uni.Replicated(), adaptive.Replicated()),
			fmtDur(adaptive.SimulatedTime()),
			fmtDur(uni.SimulatedTime()),
		})
	}
	return []*Table{t}
}

func mustExt(rs, ss []extgeom.Object, cfg extjoin.Config) *extjoin.Result {
	res, err := extjoin.Join(rs, ss, cfg)
	if err != nil {
		panic(fmt.Sprintf("xobjects: %v", err))
	}
	return res
}

// objectWorkload builds a clustered mix of polylines and polygons whose
// extents are bounded by extent (points when extent is 0).
func objectWorkload(seed int64, n int, extent float64) []extgeom.Object {
	rng := rand.New(rand.NewSource(seed))
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	centers := make([]geom.Point, 30)
	for i := range centers {
		centers[i] = geom.Point{
			X: rng.Float64() * world.MaxX,
			Y: rng.Float64() * world.MaxY,
		}
	}
	base := seed * 1_000_000_000
	out := make([]extgeom.Object, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		anchor := geom.Point{X: c.X + rng.NormFloat64()*2, Y: c.Y + rng.NormFloat64()*2}
		id := base + int64(i)
		if extent == 0 {
			out[i] = extgeom.NewPoint(id, anchor)
			continue
		}
		if rng.Intn(2) == 0 {
			out[i] = extgeom.NewPolyline(id, []geom.Point{
				anchor,
				{X: anchor.X + rng.Float64()*extent, Y: anchor.Y + rng.Float64()*extent},
			})
		} else {
			w := rng.Float64() * extent
			h := rng.Float64() * extent
			out[i] = extgeom.NewPolygon(id, []geom.Point{
				anchor,
				{X: anchor.X + w, Y: anchor.Y},
				{X: anchor.X + w, Y: anchor.Y + h},
				{X: anchor.X, Y: anchor.Y + h},
			})
		}
	}
	return out
}
