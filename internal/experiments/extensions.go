package experiments

import (
	"fmt"

	"spatialjoin"
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/tuple"
)

// Extension experiments: ablations beyond the paper's artefacts, probing
// the design choices DESIGN.md calls out. They are registered behind the
// paper's ids so `cmd/experiments -all` includes them.

// Extensions returns the registry of extension experiments.
func Extensions() []Experiment {
	return []Experiment{
		{"xsample", "ablation: effect of the sampling fraction on adaptive replication", XSample},
		{"xpolicy", "ablation: LPiB tie-break fallback vs strict LPiB vs DIFF", XPolicy},
		{"xcostmodel", "extension: analytical cost model predictions vs measured runs", XCostModel},
		{"xobjects", "extension: polyline/polygon join, adaptive vs universal, varying object extent", XObjects},
		{"xorder", "ablation: Algorithm 1 edge traversal order (paper vs weight-only vs index)", XOrder},
		{"xrefpoint", "ablation: duplicate handling — agreements vs dedup-after vs reference point", XRefPoint},
		{"xkernel", "ablation: local join kernel — sweep-x vs best-axis vs R-tree vs nested loop", XKernel},
		{"xbroadcast", "extension: graph-of-agreements broadcast cost vs its shuffle savings", XBroadcast},
		{"xresolution", "extension: cost-model grid-resolution planning vs measured join work", XResolution},
	}
}

// SampleSweep is the sampling-fraction ablation grid; the paper fixes 3%.
var SampleSweep = []float64{0.01, 0.03, 0.1, 0.3, 1.0}

// XSample measures how the sampling fraction drives adaptive replication
// quality: sparse samples leave agreement ties that default conservatively
// and erode the adaptive advantage (the paper fixes 3% at 100M-point
// scale, where 3% is still dense per cell).
func XSample(sc Scale) []*Table {
	t := &Table{
		ID:    "xsample",
		Title: "adaptive replication vs sampling fraction",
		Columns: []string{
			"combination", "metric",
		},
	}
	for _, f := range SampleSweep {
		t.Columns = append(t.Columns, fmt.Sprintf("%.0f%%", f*100))
	}
	for _, combo := range Combos()[:2] {
		rs := combo.R(sc.N)
		ss := combo.S(sc.N)
		uniBest := minI64(
			sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.PBSMUniR)).Replicated(),
			sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.PBSMUniS)).Replicated(),
		)
		replRow := []string{combo.Name, "LPiB repl"}
		gainRow := []string{combo.Name, "best-UNI/LPiB"}
		for _, f := range SampleSweep {
			opt := sc.baseOptions(DefaultEps, spatialjoin.AdaptiveLPiB)
			opt.SampleFraction = f
			rep := sc.run(rs, ss, opt)
			replRow = append(replRow, fmtCount(rep.Replicated()))
			gainRow = append(gainRow, fmtRatio(uniBest, rep.Replicated()))
		}
		t.Rows = append(t.Rows, replRow, gainRow)
	}
	return []*Table{t}
}

// XPolicy compares the agreement policies, including the strict LPiB
// without the sampled-totals tie-break fallback, at the default 3%
// sampling fraction.
func XPolicy(sc Scale) []*Table {
	t := &Table{
		ID:    "xpolicy",
		Title: "agreement policies under 3% sampling",
		Columns: []string{
			"combination", "LPiB", "LPiB-strict", "DIFF", "strict/LPiB",
		},
	}
	for _, combo := range Combos() {
		rs := combo.R(sc.N)
		ss := combo.S(sc.N)
		repl := func(pol agreements.Policy) int64 {
			res := mustCore(rs, ss, core.Config{
				Eps: DefaultEps, Policy: pol,
				Workers: sc.Workers, Partitions: sc.Partitions, Seed: sc.Seed,
			})
			return res.Replicated()
		}
		lpib := repl(agreements.LPiB)
		strict := repl(agreements.LPiBStrict)
		diff := repl(agreements.DIFF)
		t.Rows = append(t.Rows, []string{
			combo.Name,
			fmtCount(lpib), fmtCount(strict), fmtCount(diff),
			fmtRatio(strict, lpib),
		})
	}
	return []*Table{t}
}

// XCostModel validates the analytical cost model: predicted versus
// measured replication and shuffle volume for the adaptive and universal
// strategies on the synthetic combo.
func XCostModel(sc Scale) []*Table {
	t := &Table{
		ID:    "xcostmodel",
		Title: "cost model predictions vs measurements (S1xS2)",
		Columns: []string{
			"strategy", "pred repl", "meas repl", "pred shuffle", "meas shuffle",
		},
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	bounds := core.DataBounds(nil, rs, ss)
	g := grid.New(bounds, DefaultEps, 2)
	const fraction = sample.DefaultFraction
	st := grid.NewStats(g)
	st.AddAll(tuple.R, sample.Bernoulli(rs, fraction, sc.Seed))
	st.AddAll(tuple.S, sample.Bernoulli(ss, fraction, sc.Seed+1))
	const tupleBytes = 24

	gr := agreements.Build(st, agreements.LPiB)
	adPred := costmodel.Adaptive(gr, st, fraction, tupleBytes)
	adMeas := sc.run(rs, ss, sc.baseOptions(DefaultEps, spatialjoin.AdaptiveLPiB))
	t.Rows = append(t.Rows, []string{
		"LPiB",
		fmt.Sprintf("%.0f", adPred.Replicated), fmtCount(adMeas.Replicated()),
		fmtBytes(int64(adPred.ShuffledBytes)), fmtBytes(adMeas.ShuffledBytes),
	})
	for _, v := range []struct {
		name string
		set  tuple.Set
		algo spatialjoin.Algorithm
	}{
		{"UNI(R)", tuple.R, spatialjoin.PBSMUniR},
		{"UNI(S)", tuple.S, spatialjoin.PBSMUniS},
	} {
		pred := costmodel.Universal(st, v.set, fraction, tupleBytes)
		meas := sc.run(rs, ss, sc.baseOptions(DefaultEps, v.algo))
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.0f", pred.Replicated), fmtCount(meas.Replicated()),
			fmtBytes(int64(pred.ShuffledBytes)), fmtBytes(meas.ShuffledBytes),
		})
	}
	return []*Table{t}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
