package experiments

import (
	"spatialjoin"
)

// XRefPoint extends Table 6 into a three-way comparison of duplicate
// handling strategies on S1⋈S2:
//
//   - the paper's agreement-based duplicate-free assignment (LPiB),
//   - the simplified assignment followed by a parallel distinct() pass,
//   - clone join with the reference-point technique (both sets
//     replicated, pairs reported only by the midpoint's cell) — the
//     classical MASJ answer the related work cites.
//
// The adaptive assignment should dominate both on replication and time.
func XRefPoint(sc Scale) []*Table {
	t := &Table{
		ID:    "xrefpoint",
		Title: "duplicate handling: agreements vs dedup-after vs reference point (S1xS2)",
		Columns: []string{
			"strategy", "replicated", "shuffle remote", "time", "vs LPiB",
		},
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)

	strategies := []spatialjoin.Algorithm{
		spatialjoin.AdaptiveLPiB,
		spatialjoin.AdaptiveSimpleDedup,
		spatialjoin.PBSMClone,
	}
	var base *spatialjoin.Report
	for _, algo := range strategies {
		rep := sc.run(rs, ss, sc.baseOptions(DefaultEps, algo))
		if base == nil {
			base = rep
		} else if rep.Results != base.Results || rep.Checksum != base.Checksum {
			panic("xrefpoint: strategies disagree")
		}
		slowdown := float64(rep.SimulatedTime) / float64(base.SimulatedTime)
		t.Rows = append(t.Rows, []string{
			algo.String(),
			fmtCount(rep.Replicated()),
			fmtBytes(rep.ShuffleRemoteBytes),
			fmtDur(rep.SimulatedTime),
			fmtRatioF(slowdown),
		})
	}
	return []*Table{t}
}

func fmtRatioF(v float64) string {
	return fmtRatio(int64(v*1000), 1000)
}
