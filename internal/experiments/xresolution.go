package experiments

import (
	"fmt"

	"spatialjoin"
	"spatialjoin/internal/core"
	"spatialjoin/internal/planner"
)

// XResolution validates the resolution planner against measurement: the
// cost model ranks the Figure 15 grid resolutions without running any
// join, and the ranking must agree with the measured join-work metric
// (candidate pairs) that drives Figure 15's conclusion that 2ε is best.
func XResolution(sc Scale) []*Table {
	t := &Table{
		ID:    "xresolution",
		Title: "cost-model resolution planning vs measured join work (S1xS2, LPiB)",
		Columns: []string{
			"resolution", "predicted cost", "measured cand. pairs", "measured time",
		},
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	bounds := core.DataBounds(nil, rs, ss)
	choice, err := planner.PlanResolution(bounds, rs, ss, DefaultEps, 0, sc.Seed, 24, planner.Weights{}, ResSweep)
	if err != nil {
		panic(fmt.Sprintf("xresolution: %v", err))
	}
	for _, res := range ResSweep {
		opt := sc.baseOptions(DefaultEps, spatialjoin.AdaptiveLPiB)
		opt.GridRes = res
		rep := sc.run(rs, ss, opt)
		marker := ""
		if res == choice.Res {
			marker = " <- planned"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%geps%s", res, marker),
			fmt.Sprintf("%.3g", choice.Costs[res]),
			fmtCount(rep.CandidatePairs),
			fmtDur(rep.SimulatedTime),
		})
	}
	return []*Table{t}
}
