package experiments

import (
	"fmt"
	"time"

	"spatialjoin"
	"spatialjoin/internal/tuple"
)

// tupleSizeSweep renders Figures 16-18: shuffle remote reads and
// execution time as the tuple size factor grows f0..f4, for one combo.
func tupleSizeSweep(sc Scale, combo Combo, figID string) []*Table {
	shuf := &Table{ID: figID + "a", Title: fmt.Sprintf("shuffle remote reads vs tuple size (%s)", combo.Name)}
	times := &Table{ID: figID + "b", Title: fmt.Sprintf("execution time vs tuple size (%s)", combo.Name)}
	for _, t := range []*Table{shuf, times} {
		t.Columns = []string{"algorithm"}
		for i := range tuple.Factors {
			t.Columns = append(t.Columns, tuple.FactorName(i))
		}
	}
	baseR := combo.R(sc.N)
	baseS := combo.S(sc.N)
	type rowset struct{ shuf, times []string }
	rows := map[spatialjoin.Algorithm]*rowset{}
	for _, algo := range ChartAlgorithms() {
		rows[algo] = &rowset{shuf: []string{algo.String()}, times: []string{algo.String()}}
	}
	for _, size := range tuple.Factors {
		rs := tuple.WithPayloads(baseR, size)
		ss := tuple.WithPayloads(baseS, size)
		for _, algo := range ChartAlgorithms() {
			rep := sc.run(rs, ss, sc.baseOptions(DefaultEps, algo))
			rows[algo].shuf = append(rows[algo].shuf, fmtBytes(rep.ShuffleRemoteBytes))
			rows[algo].times = append(rows[algo].times, fmtDur(rep.SimulatedTime))
		}
	}
	for _, algo := range ChartAlgorithms() {
		shuf.Rows = append(shuf.Rows, rows[algo].shuf)
		times.Rows = append(times.Rows, rows[algo].times)
	}
	return []*Table{shuf, times}
}

// Fig16 reproduces Figure 16 (S1⋈S2).
func Fig16(sc Scale) []*Table { return tupleSizeSweep(sc, Combos()[0], "fig16") }

// Fig17 reproduces Figure 17 (R1⋈S1).
func Fig17(sc Scale) []*Table { return tupleSizeSweep(sc, Combos()[1], "fig17") }

// Fig18 reproduces Figure 18 (R2⋈R1).
func Fig18(sc Scale) []*Table { return tupleSizeSweep(sc, Combos()[2], "fig18") }

// Table5 reproduces Table 5: carrying the extra attributes through the
// join versus fetching them with two post-processing id-joins, for LPiB
// and DIFF at tuple size factor f1 on S1⋈S2.
func Table5(sc Scale) []*Table {
	t := &Table{
		ID:    "table5",
		Title: "extra attributes on join vs post-processing (S1xS2, f1)",
		Columns: []string{
			"method", "on join", "on post-processing", "post/on-join",
		},
	}
	payload := tuple.Factors[1]
	rsSlim := Combos()[0].R(sc.N)
	ssSlim := Combos()[0].S(sc.N)
	rsFat := tuple.WithPayloads(rsSlim, payload)
	ssFat := tuple.WithPayloads(ssSlim, payload)

	for _, algo := range []spatialjoin.Algorithm{spatialjoin.AdaptiveLPiB, spatialjoin.AdaptiveDIFF} {
		// Variant 1: attributes travel with the tuples through the join.
		onJoin := sc.run(rsFat, ssFat, sc.baseOptions(DefaultEps, algo)).SimulatedTime

		// Variant 2: join slim tuples, then two id-joins fetch the
		// attributes of both sides into the result set.
		opt := sc.baseOptions(DefaultEps, algo)
		opt.Collect = true
		slim := sc.run(rsSlim, ssSlim, opt)
		postTime := slim.SimulatedTime + enrichPairs(slim.Pairs, rsFat, ssFat, maxInt(sc.Workers, 1))

		t.Rows = append(t.Rows, []string{
			algo.String(),
			fmtDur(onJoin),
			fmtDur(postTime),
			fmt.Sprintf("%.1fx", float64(postTime)/float64(onJoin)),
		})
	}
	return []*Table{t}
}

// enrichPairs measures the post-processing step of Table 5: two
// hash joins on tuple ids that attach the non-spatial attributes of both
// inputs to every result pair, partitioned across workers like Spark's
// pair joins.
func enrichPairs(pairs []tuple.Pair, rs, ss []tuple.Tuple, workers int) time.Duration {
	start := time.Now()
	// Stage 1: join pairs with R on RID.
	rPayload := make(map[int64][]byte, len(rs))
	for _, r := range rs {
		rPayload[r.ID] = r.Payload
	}
	type enriched struct {
		pair     tuple.Pair
		rPayload []byte
		sPayload []byte
	}
	out := make([]enriched, len(pairs))
	parallelChunks(len(pairs), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = enriched{pair: pairs[i], rPayload: rPayload[pairs[i].RID]}
		}
	})
	// Stage 2: join with S on SID.
	sPayload := make(map[int64][]byte, len(ss))
	for _, s := range ss {
		sPayload[s.ID] = s.Payload
	}
	parallelChunks(len(out), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i].sPayload = sPayload[out[i].pair.SID]
		}
	})
	// The result set (with attributes) is what the join variant produced
	// directly; consume it so the compiler cannot elide the work.
	if len(out) > 0 && out[0].pair.RID < 0 {
		panic("unreachable")
	}
	return time.Since(start)
}

// parallelChunks runs fn over [0, n) split into worker chunks.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	done := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	started := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		started++
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < started; i++ {
		<-done
	}
}
