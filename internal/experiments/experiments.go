// Package experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale. Each experiment is a function from
// a Scale (cardinality / parallelism knobs) to printable Tables whose rows
// mirror the series of the corresponding paper chart; the registry maps
// the paper's artefact ids ("fig10", "table6", ...) to those functions.
//
// Absolute numbers differ from the paper's 15-VM Spark cluster — the
// substrate here is the in-process engine — but the comparisons the paper
// draws (who replicates less, who shuffles less, who finishes first, how
// gaps evolve across sweeps) are reproduced and recorded in EXPERIMENTS.md.
package experiments

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/tuple"
)

// Scale controls experiment sizing so the full suite can run as a quick
// smoke test or as the full laptop-scale reproduction.
type Scale struct {
	N          int   // base cardinality per data set
	Workers    int   // default simulated cluster size
	Partitions int   // reduce partitions (0: the library default)
	Seed       int64 // sampling seed
	// Reps is the number of repetitions per configuration; time metrics
	// report the run with the median simulated time (the paper averages
	// 10 executions). 0 means 3.
	Reps int
	// NetBandwidth is the simulated interconnect bandwidth in bytes per
	// second per worker link; 0 means 125 MB/s (~1 Gbps, the class of
	// links the paper's VMs shared). Use a negative value to disable
	// network simulation.
	NetBandwidth float64
}

// reps resolves the repetition default.
func (sc Scale) reps() int {
	if sc.Reps <= 0 {
		return 3
	}
	return sc.Reps
}

// netBandwidth resolves the bandwidth default.
func (sc Scale) netBandwidth() float64 {
	switch {
	case sc.NetBandwidth < 0:
		return 0
	case sc.NetBandwidth == 0:
		return 125e6
	default:
		return sc.NetBandwidth
	}
}

// DefaultScale is the full laptop-scale configuration: 200k points per
// set keeps the paper's ~40 points per 2ε-cell occupancy in the 100×100
// world with the default ε of 0.5.
func DefaultScale() Scale { return Scale{N: 200_000, Workers: 12} }

// QuickScale is a fast configuration for tests and benchmarks.
func QuickScale() Scale { return Scale{N: 25_000, Workers: 4, Reps: 1} }

// DefaultEps is the scaled counterpart of the paper's default ε = 0.012:
// both put an average of a few tens of points in each 2ε grid cell.
const DefaultEps = 0.5

// EpsSweep mirrors the paper's ε ∈ {0.009, 0.012, 0.015, 0.018} — the
// same 0.75 / 1 / 1.25 / 1.5 ratios around the default.
var EpsSweep = []float64{0.375, 0.5, 0.625, 0.75}

// Table is one printable result table.
type Table struct {
	ID      string   // paper artefact id, e.g. "fig10a"
	Title   string   // what the paper's chart shows
	Columns []string // header
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Experiment is a registry entry.
type Experiment struct {
	ID          string
	Description string
	Run         func(Scale) []*Table
}

// Registry lists every reproduced artefact in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1b", "relative replication overhead of PBSM over adaptive replication", Fig1b},
		{"table1", "running example: replication and per-cell cost under universal replication", Table1},
		{"fig10", "effect of varying radius on replication", Fig10},
		{"fig11", "effect of varying radius on shuffle remote reads", Fig11},
		{"fig12", "effect of varying radius on execution time", Fig12},
		{"table4", "result set selectivity and join results", Table4},
		{"fig13", "effect of varying data set size (S1 x S2)", Fig13},
		{"fig14", "effect of varying the number of nodes (S1 x S2)", Fig14},
		{"fig15", "effect of varying the grid resolution (S1 x S2)", Fig15},
		{"fig16", "effect of increasing tuple size (S1 x S2)", Fig16},
		{"fig17", "effect of increasing tuple size (R1 x S1)", Fig17},
		{"fig18", "effect of increasing tuple size (R2 x R1)", Fig18},
		{"table5", "extra attributes on join vs post-processing", Table5},
		{"table6", "duplicate-free vs non-duplicate-free with deduplication", Table6},
		{"table7", "hash vs LPT assignment of cells to workers", Table7},
	}
}

// FullRegistry returns the paper artefacts followed by the extension
// ablations (xsample, xpolicy, xcostmodel).
func FullRegistry() []Experiment {
	return append(Registry(), Extensions()...)
}

// Find returns the registry entry with the given id, searching paper
// artefacts and extensions.
func Find(id string) (Experiment, bool) {
	for _, e := range FullRegistry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Combo names a data set combination of the evaluation.
type Combo struct {
	Name string
	R, S func(n int) []tuple.Tuple
}

// Combos returns the paper's three data set combinations.
func Combos() []Combo {
	return []Combo{
		{"S1xS2", datagen.S1, datagen.S2},
		{"R1xS1", datagen.R1, datagen.S1},
		{"R2xR1", datagen.R2, datagen.R1},
	}
}

// ChartAlgorithms returns the six algorithms of the paper's charts.
func ChartAlgorithms() []spatialjoin.Algorithm {
	return []spatialjoin.Algorithm{
		spatialjoin.AdaptiveLPiB,
		spatialjoin.AdaptiveDIFF,
		spatialjoin.PBSMUniR,
		spatialjoin.PBSMUniS,
		spatialjoin.PBSMEpsGrid,
		spatialjoin.SedonaLike,
	}
}

// run executes one configured join sc.reps() times and returns the run
// with the median simulated time, failing loudly: experiment
// configurations are all valid by construction. Counts and bytes are
// deterministic across repetitions; only timings vary.
func (sc Scale) run(rs, ss []tuple.Tuple, opt spatialjoin.Options) *spatialjoin.Report {
	reps := make([]*spatialjoin.Report, sc.reps())
	for i := range reps {
		rep, err := spatialjoin.Join(rs, ss, opt)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		reps[i] = rep
	}
	slices.SortFunc(reps, func(a, b *spatialjoin.Report) int { return cmp.Compare(a.SimulatedTime, b.SimulatedTime) })
	return reps[len(reps)/2]
}

// baseOptions applies the scale to an Options value.
func (sc Scale) baseOptions(eps float64, algo spatialjoin.Algorithm) spatialjoin.Options {
	return spatialjoin.Options{
		Eps:          eps,
		Algorithm:    algo,
		Workers:      sc.Workers,
		Partitions:   sc.Partitions,
		Seed:         sc.Seed,
		NetBandwidth: sc.netBandwidth(),
	}
}

// Formatting helpers ----------------------------------------------------

func fmtCount(v int64) string { return fmt.Sprintf("%d", v) }

func fmtBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

func fmtRatio(num, den int64) string {
	if den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(num)/float64(den))
}

func fmtSel(v float64) string { return fmt.Sprintf("%.2e", v) }

// sortTablesByID keeps multi-table outputs stable.
func sortTablesByID(ts []*Table) []*Table {
	slices.SortFunc(ts, func(a, b *Table) int { return cmp.Compare(a.ID, b.ID) })
	return ts
}
