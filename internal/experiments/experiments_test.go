package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the full-suite test fast.
func tinyScale() Scale { return Scale{N: 4000, Workers: 4} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1b", "table1", "fig10", "fig11", "fig12", "table4", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "table5", "table6", "table7",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry holds %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Description == "" {
			t.Errorf("registry[%d] incomplete", i)
		}
	}
	if _, ok := Find("fig13"); !ok {
		t.Error("Find(fig13) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

// Table 1 must reproduce the paper's numbers exactly: replicating R costs
// 15/4/10/12 per cell (12 replicated objects, total cost 41); replicating
// S costs 6/18/10/8 (13 replicated, total 42).
func TestTable1MatchesPaper(t *testing.T) {
	tables := Table1(Scale{})
	if len(tables) != 2 {
		t.Fatalf("Table1 produced %d tables", len(tables))
	}
	type expect struct {
		costs      map[string]string
		replicated string
		total      string
	}
	wants := []expect{
		{map[string]string{"A": "15", "B": "4", "C": "10", "D": "12"}, "12", "41"},
		{map[string]string{"A": "6", "B": "18", "C": "10", "D": "8"}, "13", "42"},
	}
	for i, tb := range tables {
		want := wants[i]
		for _, row := range tb.Rows {
			cell := row[0]
			if cell == "total" {
				if row[3] != want.replicated {
					t.Errorf("table %d: total replicated = %s, want %s", i, row[3], want.replicated)
				}
				if row[4] != want.total {
					t.Errorf("table %d: total cost = %s, want %s", i, row[4], want.total)
				}
				continue
			}
			if got := row[4]; got != want.costs[cell] {
				t.Errorf("table %d cell %s: cost = %s, want %s", i, cell, got, want.costs[cell])
			}
		}
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is slow")
	}
	sc := tinyScale()
	for _, e := range FullRegistry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(sc)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %q incomplete: %+v", tb.ID, tb)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %q: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
					}
				}
				out := tb.String()
				if !strings.Contains(out, tb.ID) {
					t.Fatalf("rendered table missing id: %s", out)
				}
			}
		})
	}
}

// The central claim at experiment scale: Fig 1b's best-UNI/LPiB ratio must
// exceed 1 for every combination (adaptive replicates less).
func TestFig1bAdaptiveWins(t *testing.T) {
	tables := Fig1b(tinyScale())
	for _, row := range tables[0].Rows {
		ratio := row[len(row)-1]
		v, err := strconv.ParseFloat(strings.TrimSuffix(ratio, "x"), 64)
		if err != nil {
			t.Fatalf("bad ratio %q", ratio)
		}
		if v <= 1 {
			t.Errorf("combo %s: best-UNI/LPiB = %v, expected > 1", row[0], v)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.String()
	for _, want := range []string{"demo", "long-header", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestScalesAreSane(t *testing.T) {
	d, q := DefaultScale(), QuickScale()
	if d.N <= q.N {
		t.Fatal("default scale should exceed quick scale")
	}
	if len(EpsSweep) != 4 || len(SizeSweep) != 5 || len(NodeSweep) != 5 || len(ResSweep) != 4 {
		t.Fatal("sweep lengths diverge from the paper")
	}
}
