package experiments

import (
	"spatialjoin/internal/core"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// XKernel is the local-join kernel ablation, following the in-memory
// spatial join literature the paper builds on (Nobari et al. EDBT '17,
// Tsitsigkos et al. SIGSPATIAL '19): with partitioning and replication
// fixed (LPiB), only the per-cell join algorithm varies — plane sweep
// along x, per-cell best-axis sweep, an STR R-tree build-and-probe, and
// the quadratic nested loop as the floor.
func XKernel(sc Scale) []*Table {
	t := &Table{
		ID:    "xkernel",
		Title: "local join kernel ablation (LPiB partitioning fixed)",
		Columns: []string{
			"combination", "sweep-x", "best-axis", "rtree-probe", "nested-loop",
		},
	}
	kernels := []struct {
		name string
		k    dpe.Kernel
	}{
		{"sweep-x", nil}, // engine default
		{"best-axis", func(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
			sweep.PlaneSweepBestAxis(rs, ss, eps, emit)
		}},
		{"rtree-probe", func(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
			tree := rtree.Build(rs, 0)
			for _, s := range ss {
				tree.Within(s.Pt, eps, func(r tuple.Tuple) { emit(r, s) })
			}
		}},
		{"nested-loop", func(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
			sweep.NestedLoop(rs, ss, eps, emit)
		}},
	}
	for _, combo := range Combos() {
		rs := combo.R(sc.N)
		ss := combo.S(sc.N)
		row := []string{combo.Name}
		var baseline *core.Result
		for _, k := range kernels {
			res := mustCoreRepeated(sc, rs, ss, core.Config{
				Eps: DefaultEps, Kernel: k.k,
				Workers: sc.Workers, Partitions: sc.Partitions, Seed: sc.Seed,
				NetBandwidth: sc.netBandwidth(),
			})
			if baseline == nil {
				baseline = res
			} else if res.Results != baseline.Results || res.Checksum != baseline.Checksum {
				panic("xkernel: kernels disagree on " + combo.Name)
			}
			row = append(row, fmtDur(res.SimulatedTime()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// mustCoreRepeated runs core.Join sc.reps() times, returning the run with
// the median simulated time.
func mustCoreRepeated(sc Scale, rs, ss []tuple.Tuple, cfg core.Config) *core.Result {
	best := make([]*core.Result, 0, sc.reps())
	for i := 0; i < sc.reps(); i++ {
		best = append(best, mustCore(rs, ss, cfg))
	}
	med := best[0]
	for _, r := range best {
		if r.SimulatedTime() < med.SimulatedTime() {
			med = r
		}
	}
	return med
}
