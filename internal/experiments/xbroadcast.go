package experiments

import (
	"fmt"

	"spatialjoin"
)

// XBroadcast quantifies a cost the paper does not chart: the driver must
// broadcast the resolved graph of agreements to every worker (Algorithm
// 5, line 6), and its size grows with the grid — i.e. shrinks with ε.
// PBSM only ships the grid parameters (a few dozen bytes), so this is
// the admission price of adaptivity; the experiment shows it stays three
// orders of magnitude below the shuffle savings it buys.
func XBroadcast(sc Scale) []*Table {
	t := &Table{
		ID:    "xbroadcast",
		Title: "graph-of-agreements broadcast cost vs eps (S1xS2, LPiB)",
		Columns: []string{
			"eps", "grid cells", "broadcast", "shuffle saved vs UNI(R)",
		},
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	for _, eps := range EpsSweep {
		adaptive := sc.run(rs, ss, sc.baseOptions(eps, spatialjoin.AdaptiveLPiB))
		uni := sc.run(rs, ss, sc.baseOptions(eps, spatialjoin.PBSMUniR))
		saved := uni.ShuffledBytes - adaptive.ShuffledBytes
		// Grid cells from the world and resolution (2ε).
		w := spatialjoin.World()
		nx := int(w.Width()/(2*eps) + 0.999999)
		ny := int(w.Height()/(2*eps) + 0.999999)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", eps),
			fmt.Sprintf("%d", nx*ny),
			fmtBytes(adaptive.BroadcastBytes),
			fmtBytes(saved),
		})
	}
	return []*Table{t}
}
