package experiments

import (
	"fmt"

	"spatialjoin"
)

// SizeSweep mirrors the paper's data size factors x1..x8.
var SizeSweep = []int{1, 2, 4, 6, 8}

// NodeSweep mirrors the paper's cluster sizes.
var NodeSweep = []int{4, 6, 8, 10, 12}

// ResSweep mirrors the paper's grid resolutions 2ε..5ε.
var ResSweep = []float64{2, 3, 4, 5}

// Fig13 reproduces Figure 13: replication (a), shuffled data (b) and
// execution time split into construction + join (c), as the S1⋈S2 data
// size grows x1..x8. The paper scales Spark partitions with the data; we
// scale reduce partitions likewise.
func Fig13(sc Scale) []*Table {
	repl := &Table{ID: "fig13a", Title: "replicated objects vs data size (S1xS2)"}
	shuf := &Table{ID: "fig13b", Title: "shuffle remote reads vs data size (S1xS2)"}
	times := &Table{ID: "fig13c", Title: "construction+join time vs data size (S1xS2)"}
	for _, t := range []*Table{repl, shuf} {
		t.Columns = []string{"algorithm"}
		for _, f := range SizeSweep {
			t.Columns = append(t.Columns, fmt.Sprintf("x%d", f))
		}
	}
	times.Columns = []string{"algorithm"}
	for _, f := range SizeSweep {
		times.Columns = append(times.Columns, fmt.Sprintf("x%d constr", f), fmt.Sprintf("x%d join", f))
	}

	type rowset struct{ repl, shuf, times []string }
	rows := map[spatialjoin.Algorithm]*rowset{}
	for _, algo := range ChartAlgorithms() {
		rows[algo] = &rowset{
			repl:  []string{algo.String()},
			shuf:  []string{algo.String()},
			times: []string{algo.String()},
		}
	}
	for _, factor := range SizeSweep {
		n := sc.N * factor
		rs := Combos()[0].R(n)
		ss := Combos()[0].S(n)
		for _, algo := range ChartAlgorithms() {
			opt := sc.baseOptions(DefaultEps, algo)
			// The paper grows Spark partitions with data size factors.
			if sc.Partitions == 0 {
				opt.Partitions = 8 * maxInt(sc.Workers, 1) * factor
			}
			rep := sc.run(rs, ss, opt)
			rows[algo].repl = append(rows[algo].repl, fmtCount(rep.Replicated()))
			rows[algo].shuf = append(rows[algo].shuf, fmtBytes(rep.ShuffleRemoteBytes))
			rows[algo].times = append(rows[algo].times,
				fmtDur(rep.SimulatedConstructionTime()), fmtDur(rep.SimulatedJoinTime()))
		}
	}
	for _, algo := range ChartAlgorithms() {
		repl.Rows = append(repl.Rows, rows[algo].repl)
		shuf.Rows = append(shuf.Rows, rows[algo].shuf)
		times.Rows = append(times.Rows, rows[algo].times)
	}
	return []*Table{repl, shuf, times}
}

// Fig14 reproduces Figure 14: execution time and shuffle remote reads as
// the number of nodes grows, S1⋈S2.
func Fig14(sc Scale) []*Table {
	timeT := &Table{ID: "fig14a", Title: "execution time vs nodes (S1xS2)"}
	shufT := &Table{ID: "fig14b", Title: "shuffle remote reads vs nodes (S1xS2)"}
	for _, t := range []*Table{timeT, shufT} {
		t.Columns = []string{"algorithm"}
		for _, w := range NodeSweep {
			t.Columns = append(t.Columns, fmt.Sprintf("%d nodes", w))
		}
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	for _, algo := range ChartAlgorithms() {
		timeRow := []string{algo.String()}
		shufRow := []string{algo.String()}
		for _, w := range NodeSweep {
			opt := sc.baseOptions(DefaultEps, algo)
			opt.Workers = w
			if sc.Partitions == 0 {
				opt.Partitions = 96 // the paper's fixed partition count
			}
			rep := sc.run(rs, ss, opt)
			timeRow = append(timeRow, fmtDur(rep.SimulatedTime))
			shufRow = append(shufRow, fmtBytes(rep.ShuffleRemoteBytes))
		}
		timeT.Rows = append(timeT.Rows, timeRow)
		shufT.Rows = append(shufT.Rows, shufRow)
	}
	return []*Table{timeT, shufT}
}

// Fig15 reproduces Figure 15: execution time of LPiB and DIFF as the grid
// resolution varies from 2ε to 5ε, S1⋈S2.
func Fig15(sc Scale) []*Table {
	t := &Table{ID: "fig15", Title: "execution time vs grid resolution (S1xS2)"}
	t.Columns = []string{"algorithm", "metric"}
	for _, res := range ResSweep {
		t.Columns = append(t.Columns, fmt.Sprintf("%geps", res))
	}
	rs := Combos()[0].R(sc.N)
	ss := Combos()[0].S(sc.N)
	for _, algo := range []spatialjoin.Algorithm{spatialjoin.AdaptiveLPiB, spatialjoin.AdaptiveDIFF} {
		timeRow := []string{algo.String(), "time"}
		workRow := []string{algo.String(), "cand. pairs"}
		for _, res := range ResSweep {
			opt := sc.baseOptions(DefaultEps, algo)
			opt.GridRes = res
			rep := sc.run(rs, ss, opt)
			timeRow = append(timeRow, fmtDur(rep.SimulatedTime))
			workRow = append(workRow, fmtCount(rep.CandidatePairs))
		}
		t.Rows = append(t.Rows, timeRow, workRow)
	}
	return []*Table{t}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
