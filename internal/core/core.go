// Package core implements the paper's contribution end to end: the
// parallel ε-distance spatial join with adaptive replication (Algorithm 5).
//
// The pipeline follows the paper's phases exactly:
//
//  1. Sampling: a Bernoulli sample of each input feeds per-cell statistics
//     (paper default 3%).
//  2. Agreement-based grid construction: a 2ε-resolution grid is built
//     over the data MBR and the graph of agreements is instantiated with
//     the LPiB or DIFF policy, then made duplicate-free with edge marking
//     and locking (Algorithm 1).
//  3. Spatial mapping: every tuple is flat-mapped to the 1D cell keys the
//     adaptive replication assigns it (Algorithms 2-4).
//  4. Partition assignment and join: cells are routed to reduce
//     partitions (hash, or the LPT placement computed from sampled cost
//     estimates), shuffled, and each cell is joined with a plane sweep
//     followed by the ε-distance refinement.
package core

import (
	"fmt"
	"runtime"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/lpt"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/tuple"
)

// Config parameterises one adaptive join execution. Zero values select
// the paper's defaults where one exists.
type Config struct {
	Eps            float64           // join distance threshold (required, > 0)
	Res            float64           // grid resolution multiplier k (cell side k·ε); default 2
	Policy         agreements.Policy // LPiB (default) or DIFF; UniR/UniS give PBSM-as-agreements
	SampleFraction float64           // default 0.03 (the paper's 3%)
	Seed           int64             // sampling seed
	Workers        int               // simulated nodes; default GOMAXPROCS
	Partitions     int               // reduce partitions; default 8 × workers
	UseLPT         bool              // LPT cell placement instead of hash partitioning
	Order          agreements.Order  // Algorithm 1 edge order; OrderPaper by default
	Kernel         dpe.Kernel        // local join kernel; plane sweep when nil
	Simple         bool              // non-duplicate-free assignment + distinct() (Table 6)
	SelfFilter     bool              // self-join mode: keep only pairs with r.ID < s.ID
	Collect        bool              // materialise result pairs
	Bounds         *geom.Rect        // data-space MBR; computed from the inputs when nil
	NetBandwidth   float64           // simulated bytes/s per worker link (0: off)
}

// Result is the outcome of an adaptive join.
type Result struct {
	dpe.Metrics
	Pairs []tuple.Pair      // when Config.Collect
	Grid  *grid.Grid        // the grid used
	Graph *agreements.Graph // the resolved graph of agreements
}

// Join executes the ε-distance join R ⋈ε S with adaptive replication.
func Join(rs, ss []tuple.Tuple, cfg Config) (*Result, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("core: Eps must be positive, got %v", cfg.Eps)
	}
	if cfg.Res == 0 {
		cfg.Res = 2
	}
	if cfg.Res < 2 {
		return nil, fmt.Errorf("core: grid resolution %v violates the l >= 2ε requirement of agreements", cfg.Res)
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = sample.DefaultFraction
	}
	workers, partitions := Parallelism(cfg.Workers, cfg.Partitions)

	bounds := DataBounds(cfg.Bounds, rs, ss)
	g := grid.New(bounds, cfg.Eps, cfg.Res)

	// Phase 1: sampling.
	start := time.Now()
	st := grid.NewStats(g)
	st.AddAll(tuple.R, sample.Bernoulli(rs, cfg.SampleFraction, cfg.Seed))
	st.AddAll(tuple.S, sample.Bernoulli(ss, cfg.SampleFraction, cfg.Seed+1))
	sampleTime := time.Since(start)

	// Phase 2: graph of agreements + duplicate-free resolution, and the
	// cell placement.
	start = time.Now()
	gr := agreements.BuildOrdered(st, cfg.Policy, cfg.Order)
	var part dpe.Partitioner = dpe.HashPartitioner{N: partitions}
	if cfg.UseLPT {
		costs := gr.EstimatedCosts(st)
		part = dpe.ExplicitPartitioner{Table: lpt.Assign(costs, partitions), N: partitions}
	}
	buildTime := time.Since(start)

	// Phases 3-4: mapping, shuffle, partition joins on the engine.
	assign := func(p geom.Point, set tuple.Set, dst []int) []int {
		return replicate.Adaptive(gr, p, set, dst)
	}
	if cfg.Simple {
		assign = func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.AdaptiveSimple(gr, p, set, dst)
		}
	}
	res, err := dpe.Run(dpe.Spec{
		R: rs, S: ss, Eps: cfg.Eps,
		AssignR: assign, AssignS: assign,
		Part:       part,
		Workers:    workers,
		Kernel:     cfg.Kernel,
		Collect:    cfg.Collect,
		Dedup:      cfg.Simple,
		SelfFilter: cfg.SelfFilter,

		NetBandwidth: cfg.NetBandwidth,
	})
	if err != nil {
		return nil, err
	}
	res.SampleTime = sampleTime
	res.BuildTime = buildTime
	// The resolved graph is broadcast to every worker (Algorithm 5,
	// line 6); account its wire size per receiving node.
	nodes := workers
	if nodes <= 0 {
		nodes = defaultWorkers()
	}
	res.BroadcastBytes = int64(gr.EncodedSize()) * int64(nodes)
	return &Result{Metrics: res.Metrics, Pairs: res.Pairs, Grid: g, Graph: gr}, nil
}

// Parallelism resolves the worker and partition counts shared by every
// join orchestrator in the library: workers defaults to 0 (letting the
// engine pick GOMAXPROCS), partitions to 8 × workers — the paper's ratio
// of 96 Spark partitions on 12 nodes.
func Parallelism(workers, partitions int) (int, int) {
	if partitions <= 0 {
		w := workers
		if w <= 0 {
			w = defaultWorkers()
		}
		partitions = 8 * w
	}
	return workers, partitions
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DataBounds returns explicit bounds if given, else the MBR of both
// inputs, else the unit square so empty joins still build a valid grid.
func DataBounds(explicit *geom.Rect, rs, ss []tuple.Tuple) geom.Rect {
	if explicit != nil {
		return *explicit
	}
	b := geom.EmptyRect()
	for _, t := range rs {
		b = b.ExtendPoint(t.Pt)
	}
	for _, t := range ss {
		b = b.ExtendPoint(t.Pt)
	}
	if b.IsEmpty() {
		return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	// A degenerate (zero-extent) axis still needs a positive span for
	// grid construction.
	if b.Width() == 0 {
		b.MaxX++
	}
	if b.Height() == 0 {
		b.MaxY++
	}
	return b
}
