// Package core implements the paper's contribution end to end: the
// parallel ε-distance spatial join with adaptive replication (Algorithm 5).
//
// The pipeline follows the paper's phases exactly:
//
//  1. Sampling: a Bernoulli sample of each input feeds per-cell statistics
//     (paper default 3%).
//  2. Agreement-based grid construction: a 2ε-resolution grid is built
//     over the data MBR and the graph of agreements is instantiated with
//     the LPiB or DIFF policy, then made duplicate-free with edge marking
//     and locking (Algorithm 1).
//  3. Spatial mapping: every tuple is flat-mapped to the 1D cell keys the
//     adaptive replication assigns it (Algorithms 2-4).
//  4. Partition assignment and join: cells are routed to reduce
//     partitions (hash, or the LPT placement computed from sampled cost
//     estimates), shuffled, and each cell is joined with a plane sweep
//     followed by the ε-distance refinement.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/lpt"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/tuple"
)

// Config parameterises one adaptive join execution. Zero values select
// the paper's defaults where one exists.
type Config struct {
	Eps            float64           // join distance threshold (required, > 0)
	Res            float64           // grid resolution multiplier k (cell side k·ε); default 2
	Policy         agreements.Policy // LPiB (default) or DIFF; UniR/UniS give PBSM-as-agreements
	SampleFraction float64           // default 0.03 (the paper's 3%)
	Seed           int64             // sampling seed
	Workers        int               // simulated nodes; default GOMAXPROCS
	Partitions     int               // reduce partitions; default 8 × workers
	UseLPT         bool              // LPT cell placement instead of hash partitioning
	Order          agreements.Order  // Algorithm 1 edge order; OrderPaper by default
	Kernel         dpe.Kernel        // local join kernel; the columnar plane sweep when nil (dpe.ScalarKernel forces the scalar oracle)
	Simple         bool              // non-duplicate-free assignment + distinct() (Table 6)
	SelfFilter     bool              // self-join mode: keep only pairs with r.ID < s.ID
	Collect        bool              // materialise result pairs
	Bounds         *geom.Rect        // data-space MBR; computed from the inputs when nil
	NetBandwidth   float64           // simulated bytes/s per worker link (0: off)
	PoolSize       int               // OS-level goroutine pool cap; default GOMAXPROCS

	// Engine selects the execution backend for the partition-level joins:
	// nil runs them on the in-process local engine; a cluster engine ships
	// them to remote worker processes. With a non-nil Engine the plan also
	// carries the encoded graph of agreements and LPT placement as the
	// broadcast blob workers receive (Algorithm 5's driver broadcast, in
	// real bytes).
	Engine dpe.Engine

	// SampleR and SampleS optionally supply pre-drawn Bernoulli samples of
	// the inputs (e.g. cached by a serving layer across ε re-plans); when
	// nil, samples are drawn from the inputs with SampleFraction and Seed.
	SampleR, SampleS []tuple.Tuple

	// Tracer records phase spans (plan → sample/partition/replicate/
	// shuffle, then per-partition tasks at execute time) under
	// TraceParent; nil disables tracing at zero cost.
	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Result is the outcome of an adaptive join.
type Result struct {
	dpe.Metrics
	Pairs []tuple.Pair      // when Config.Collect
	Grid  *grid.Grid        // the grid used
	Graph *agreements.Graph // the resolved graph of agreements
}

// Plan is a reusable adaptive-join execution plan: the grid, sampled
// statistics, resolved graph of agreements, cell placement, and the
// already-replicated partition-bucketed tuples. Building one pays the
// whole construction pipeline once; Execute then runs only the
// partition-level joins and may be called repeatedly and concurrently.
type Plan struct {
	Grid  *grid.Grid
	Stats *grid.Stats
	Graph *agreements.Graph

	prep *dpe.Prepared
	cfg  Config

	// SampleTime and BuildTime are the construction-phase timings;
	// BroadcastBytes is the graph's wire size per receiving node.
	SampleTime, BuildTime time.Duration
	BroadcastBytes        int64
}

// BuildPlan runs phases 1-3 of the paper's pipeline — sampling, graph of
// agreements, cell placement, mapping and shuffling — and returns the
// reusable plan without joining the partitions.
func BuildPlan(rs, ss []tuple.Tuple, cfg Config) (*Plan, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("core: Eps must be positive, got %v", cfg.Eps)
	}
	if cfg.Res == 0 {
		cfg.Res = 2
	}
	if cfg.Res < 2 {
		return nil, fmt.Errorf("core: grid resolution %v violates the l >= 2ε requirement of agreements", cfg.Res)
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = sample.DefaultFraction
	}
	workers, partitions := Parallelism(cfg.Workers, cfg.Partitions)

	bounds := DataBounds(cfg.Bounds, rs, ss)
	g := grid.New(bounds, cfg.Eps, cfg.Res)

	planSp := cfg.Tracer.Start(cfg.TraceParent, obs.SpanPlan)
	planSp.SetInt("cells", int64(g.NumCells()))

	// Phase 1: sampling (skipped when the caller supplies cached samples).
	sampleSp := cfg.Tracer.Start(planSp.SpanID(), obs.SpanSample)
	start := time.Now()
	st := grid.NewStats(g)
	sr, sSample := cfg.SampleR, cfg.SampleS
	if sr == nil {
		sr = sample.Bernoulli(rs, cfg.SampleFraction, cfg.Seed)
	}
	if sSample == nil {
		sSample = sample.Bernoulli(ss, cfg.SampleFraction, cfg.Seed+1)
	}
	st.AddAll(tuple.R, sr)
	st.AddAll(tuple.S, sSample)
	sampleTime := time.Since(start)
	sampleSp.SetInt("sample_r", int64(len(sr))).SetInt("sample_s", int64(len(sSample)))
	sampleSp.End()

	// Phase 2: graph of agreements + duplicate-free resolution, and the
	// cell placement.
	partSp := cfg.Tracer.Start(planSp.SpanID(), obs.SpanPartition)
	start = time.Now()
	gr := agreements.BuildOrdered(st, cfg.Policy, cfg.Order)
	var part dpe.Partitioner = dpe.HashPartitioner{N: partitions}
	if cfg.UseLPT {
		costs := gr.EstimatedCosts(st)
		part = dpe.ExplicitPartitioner{Table: lpt.Assign(costs, partitions), N: partitions}
	}
	buildTime := time.Since(start)
	if partSp != nil {
		marked, locked := edgeCounts(gr)
		partSp.SetInt("partitions", int64(partitions))
		partSp.SetInt("marked_edges", marked).SetInt("locked_edges", locked)
	}
	partSp.End()

	// Phase 3: mapping and shuffling on the engine.
	assign := func(p geom.Point, set tuple.Set, dst []int) []int {
		return replicate.Adaptive(gr, p, set, dst)
	}
	if cfg.Simple {
		assign = func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.AdaptiveSimple(gr, p, set, dst)
		}
	}
	spec := dpe.Spec{
		R: rs, S: ss, Eps: cfg.Eps,
		AssignR: assign, AssignS: assign,
		Part:       part,
		Workers:    workers,
		Kernel:     cfg.Kernel,
		Collect:    cfg.Collect,
		Dedup:      cfg.Simple,
		SelfFilter: cfg.SelfFilter,

		NetBandwidth: cfg.NetBandwidth,
		PoolSize:     cfg.PoolSize,
		Engine:       cfg.Engine,

		Tracer:      cfg.Tracer,
		TraceParent: cfg.TraceParent,
	}
	if cfg.Engine != nil {
		spec.Broadcast = broadcastBlob(gr, part)
	}
	// The adaptive assigns emit cell ids of the 2ε-grid, all within
	// [0, NumCells) — the contract that turns the map/shuffle into the
	// columnar slab pipeline. Ranking cells along the Hilbert curve
	// keeps adjacent slab groups spatially adjacent.
	if cfg.Kernel == nil {
		spec.Cells = gr.Grid.NumCells()
		spec.CellRank = colpipe.HilbertRanks(gr.Grid.NX, gr.Grid.NY)
	}
	planSp.End()
	prep, err := dpe.Prepare(spec)
	if err != nil {
		return nil, err
	}
	// The resolved graph is broadcast to every worker (Algorithm 5,
	// line 6); account its wire size per receiving node.
	nodes := workers
	if nodes <= 0 {
		nodes = defaultWorkers()
	}
	return &Plan{
		Grid: g, Stats: st, Graph: gr,
		prep: prep, cfg: cfg,
		SampleTime: sampleTime, BuildTime: buildTime,
		BroadcastBytes: int64(gr.EncodedSize()) * int64(nodes),
	}, nil
}

// Exec are the per-execution knobs of a Plan.
type Exec struct {
	// Eps optionally re-sweeps the plan with a smaller threshold; any
	// value in (0, plan ε] is correct and duplicate-free. Zero means the
	// plan's ε.
	Eps float64
	// Collect materialises the result pairs.
	Collect bool
	// Ctx cancels an in-flight execution; nil means context.Background().
	Ctx context.Context
	// Tracer records this execution's spans (tasks, supplementary join,
	// dedup) under TraceParent; nil falls back to the plan's build-time
	// tracer, so one-shot joins get a single tree.
	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Eps returns the distance threshold the plan was built for.
func (p *Plan) Eps() float64 { return p.cfg.Eps }

// FootprintBytes returns the wire size of the partitioned tuples the
// plan retains — what a plan cache should account for.
func (p *Plan) FootprintBytes() int64 { return p.prep.FootprintBytes() }

// Replicated returns the replicated objects the plan serves per Execute.
func (p *Plan) Replicated() int64 { return p.prep.Replicated() }

// Execute runs the partition-level joins of the plan. Safe for
// concurrent use; construction metrics are carried into every result.
func (p *Plan) Execute(e Exec) (*Result, error) {
	ctx := e.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := p.prep.ExecuteContext(ctx, dpe.ExecOptions{
		Eps: e.Eps, Collect: e.Collect,
		Tracer: e.Tracer, TraceParent: e.TraceParent,
	})
	if err != nil {
		return nil, err
	}
	res.SampleTime = p.SampleTime
	res.BuildTime = p.BuildTime
	// A distributed engine reports the broadcast it actually shipped;
	// otherwise fall back to the modelled per-node graph size.
	if res.BroadcastBytes == 0 {
		res.BroadcastBytes = p.BroadcastBytes
	}
	return &Result{Metrics: res.Metrics, Pairs: res.Pairs, Grid: p.Grid, Graph: p.Graph}, nil
}

// broadcastBlob serialises what the driver ships to every worker of a
// distributed engine: the resolved graph of agreements (its own wire
// format) followed by the explicit cell placement table, when one exists.
func broadcastBlob(gr *agreements.Graph, part dpe.Partitioner) []byte {
	var buf bytes.Buffer
	buf.Grow(gr.EncodedSize())
	gr.Encode(&buf) // cannot fail on a bytes.Buffer
	if ep, ok := part.(dpe.ExplicitPartitioner); ok {
		b := binary.LittleEndian.AppendUint32(nil, uint32(len(ep.Table)))
		for _, p := range ep.Table {
			b = binary.LittleEndian.AppendUint32(b, uint32(p))
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// Join executes the ε-distance join R ⋈ε S with adaptive replication —
// BuildPlan followed by a single Execute.
func Join(rs, ss []tuple.Tuple, cfg Config) (*Result, error) {
	p, err := BuildPlan(rs, ss, cfg)
	if err != nil {
		return nil, err
	}
	return p.Execute(Exec{Collect: cfg.Collect})
}

// Parallelism resolves the worker and partition counts shared by every
// join orchestrator in the library: workers defaults to 0 (letting the
// engine pick GOMAXPROCS), partitions to 8 × workers — the paper's ratio
// of 96 Spark partitions on 12 nodes.
func Parallelism(workers, partitions int) (int, int) {
	if partitions <= 0 {
		w := workers
		if w <= 0 {
			w = defaultWorkers()
		}
		partitions = 8 * w
	}
	return workers, partitions
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// edgeCounts totals the marked and locked directed edges across the
// graph's quartet subgraphs — the duplicate-free resolution state the
// plan span reports.
func edgeCounts(gr *agreements.Graph) (marked, locked int64) {
	for q := range gr.Subs {
		s := &gr.Subs[q]
		// Locks are only ever placed alongside a mark, so an unmarked
		// subgraph contributes to neither count.
		if !s.AnyMarked() {
			continue
		}
		marked += int64(s.MarkedEdges())
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			for j := grid.Pos(0); j < grid.NumPos; j++ {
				if i != j && s.Locked(i, j) {
					locked++
				}
			}
		}
	}
	return marked, locked
}

// DataBounds returns explicit bounds if given, else the MBR of both
// inputs, else the unit square so empty joins still build a valid grid.
func DataBounds(explicit *geom.Rect, rs, ss []tuple.Tuple) geom.Rect {
	if explicit != nil {
		return *explicit
	}
	b := geom.EmptyRect()
	for _, t := range rs {
		b = b.ExtendPoint(t.Pt)
	}
	for _, t := range ss {
		b = b.ExtendPoint(t.Pt)
	}
	if b.IsEmpty() {
		return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	// A degenerate (zero-extent) axis still needs a positive span for
	// grid construction.
	if b.Width() == 0 {
		b.MaxX++
	}
	if b.Height() == 0 {
		b.MaxY++
	}
	return b
}
