package core

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

func clustered(rng *rand.Rand, n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	centers := []geom.Point{{X: 10, Y: 10}, {X: 30, Y: 25}, {X: 15, Y: 35}}
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: c.X + rng.NormFloat64()*4, Y: c.Y + rng.NormFloat64()*4},
		}
	}
	return out
}

func oracleCount(rs, ss []tuple.Tuple, eps float64) sweep.Counter {
	var c sweep.Counter
	sweep.NestedLoop(rs, ss, eps, c.Emit)
	return c
}

func TestJoinMatchesOracleAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rs := clustered(rng, 4000, 0)
	ss := clustered(rng, 4000, 1_000_000)
	eps := 0.8
	want := oracleCount(rs, ss, eps)

	for _, pol := range []agreements.Policy{agreements.LPiB, agreements.DIFF, agreements.UniR, agreements.UniS} {
		for _, useLPT := range []bool{false, true} {
			res, err := Join(rs, ss, Config{Eps: eps, Policy: pol, UseLPT: useLPT, Workers: 4, Seed: 42})
			if err != nil {
				t.Fatalf("%v lpt=%v: %v", pol, useLPT, err)
			}
			if res.Results != want.N || res.Checksum != want.Checksum {
				t.Fatalf("%v lpt=%v: results %d/%x, want %d/%x", pol, useLPT, res.Results, res.Checksum, want.N, want.Checksum)
			}
		}
	}
}

func TestJoinSimpleVariantMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := clustered(rng, 3000, 0)
	ss := clustered(rng, 3000, 1_000_000)
	eps := 0.7
	want := oracleCount(rs, ss, eps)
	res, err := Join(rs, ss, Config{Eps: eps, Simple: true, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != want.N || res.Checksum != want.Checksum {
		t.Fatalf("simple variant: results %d/%x, want %d/%x", res.Results, res.Checksum, want.N, want.Checksum)
	}
	if res.DedupTime <= 0 {
		t.Fatal("simple variant must run (and time) a dedup pass")
	}
}

func TestJoinCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rs := clustered(rng, 500, 0)
	ss := clustered(rng, 500, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 1, Collect: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Pairs)) != res.Results {
		t.Fatalf("collected %d pairs, counted %d", len(res.Pairs), res.Results)
	}
	for _, p := range res.Pairs {
		if p.RID >= 1_000_000 || p.SID < 1_000_000 {
			t.Fatalf("pair %v has swapped roles", p)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(nil, nil, Config{Eps: 0}); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := Join(nil, nil, Config{Eps: 1, Res: 1.5}); err == nil {
		t.Error("expected error for res<2")
	}
	if _, err := Join(nil, nil, Config{Eps: 1}); err != nil {
		t.Errorf("empty join should succeed: %v", err)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	res, err := Join(nil, nil, Config{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != 0 || res.Replicated() != 0 {
		t.Fatalf("empty join: results %d, replicated %d", res.Results, res.Replicated())
	}
}

func TestJoinExposesGridAndGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rs := clustered(rng, 200, 0)
	ss := clustered(rng, 200, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid == nil || res.Graph == nil {
		t.Fatal("grid/graph must be exposed")
	}
	if res.Grid.Res != 2 {
		t.Fatalf("default resolution = %v, want 2", res.Grid.Res)
	}
	if res.SampleTime < 0 || res.BuildTime <= 0 {
		t.Fatalf("phase times not recorded: sample=%v build=%v", res.SampleTime, res.BuildTime)
	}
}

func TestDataBounds(t *testing.T) {
	explicit := geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
	if got := DataBounds(&explicit, nil, nil); got != explicit {
		t.Fatalf("explicit bounds ignored: %+v", got)
	}
	rs := []tuple.Tuple{{Pt: geom.Point{X: 1, Y: 2}}}
	ss := []tuple.Tuple{{Pt: geom.Point{X: 7, Y: -3}}}
	got := DataBounds(nil, rs, ss)
	if (got != geom.Rect{MinX: 1, MinY: -3, MaxX: 7, MaxY: 2}) {
		t.Fatalf("computed bounds = %+v", got)
	}
	// Degenerate extents get padded.
	one := []tuple.Tuple{{Pt: geom.Point{X: 3, Y: 4}}}
	got = DataBounds(nil, one, nil)
	if got.Width() <= 0 || got.Height() <= 0 {
		t.Fatalf("degenerate bounds not padded: %+v", got)
	}
	// Empty inputs get the unit square.
	got = DataBounds(nil, nil, nil)
	if got.Width() <= 0 || got.Height() <= 0 {
		t.Fatalf("empty bounds invalid: %+v", got)
	}
}

func TestParallelism(t *testing.T) {
	w, p := Parallelism(4, 0)
	if w != 4 || p != 32 {
		t.Fatalf("Parallelism(4,0) = %d,%d, want 4,32", w, p)
	}
	w, p = Parallelism(4, 96)
	if w != 4 || p != 96 {
		t.Fatalf("explicit partitions overridden: %d,%d", w, p)
	}
	_, p = Parallelism(0, 0)
	if p <= 0 {
		t.Fatalf("default partitions = %d", p)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rs := clustered(rng, 2000, 0)
	ss := clustered(rng, 2000, 1_000_000)
	var first *Result
	for _, w := range []int{1, 2, 7} {
		res, err := Join(rs, ss, Config{Eps: 0.9, Workers: w, Partitions: 40, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Results != first.Results || res.Checksum != first.Checksum {
			t.Fatalf("worker count %d changed results: %d/%x vs %d/%x",
				w, res.Results, res.Checksum, first.Results, first.Checksum)
		}
		if res.Replicated() != first.Replicated() {
			t.Fatalf("worker count %d changed replication: %d vs %d", w, res.Replicated(), first.Replicated())
		}
	}
}

// Every Algorithm 1 edge order must stay exact — the order only affects
// how much replication the duplicate-free resolution costs.
func TestAllEdgeOrdersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	rs := clustered(rng, 3000, 0)
	ss := clustered(rng, 3000, 1_000_000)
	eps := 0.9
	want := oracleCount(rs, ss, eps)
	for _, order := range []agreements.Order{
		agreements.OrderPaper, agreements.OrderWeightOnly, agreements.OrderIndex,
	} {
		res, err := Join(rs, ss, Config{Eps: eps, Order: order, Workers: 3, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if res.Results != want.N || res.Checksum != want.Checksum {
			t.Fatalf("order %v: results %d/%x, want %d/%x", order, res.Results, res.Checksum, want.N, want.Checksum)
		}
	}
}
