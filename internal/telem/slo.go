package telem

import (
	"sync"
	"time"
)

// DefaultLatencyBounds mirror the service latency histogram (seconds)
// so percentiles interpolated here agree with the /metrics exposition.
var DefaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// DefaultObjective is the availability objective used when none is
// configured: 99.5% of requests succeed.
const DefaultObjective = 0.995

// DefaultSLOWindow is the burn-rate window.
const DefaultSLOWindow = time.Minute

// SLOConfig parameterizes a tracker.
type SLOConfig struct {
	// Objective is the availability objective in (0, 1); errors above
	// 1-Objective of traffic burn the budget. Default 0.995.
	Objective float64
	// Window is the burn-rate lookback. Default one minute.
	Window time.Duration
	// LatencyBounds are histogram upper bounds in seconds, ascending.
	// Default DefaultLatencyBounds.
	LatencyBounds []float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = DefaultObjective
	}
	if c.Window <= 0 {
		c.Window = DefaultSLOWindow
	}
	if len(c.LatencyBounds) == 0 {
		c.LatencyBounds = DefaultLatencyBounds
	}
	return c
}

// sloCell is one second of the burn-rate window.
type sloCell struct {
	sec           int64
	total, errors int64
}

// tenantSLO accumulates one tenant's lifetime histogram plus a ring of
// per-second cells for the windowed burn rate.
type tenantSLO struct {
	latCounts []int64 // len(bounds)+1; last is the overflow bucket
	latSum    float64
	latCount  int64
	total     int64
	errors    int64
	cells     []sloCell
}

// SLOTracker tracks per-tenant latency and error budgets.
type SLOTracker struct {
	mu      sync.Mutex
	cfg     SLOConfig
	tenants map[string]*tenantSLO
	order   []string
}

// NewSLOTracker builds a tracker with defaults applied.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), tenants: map[string]*tenantSLO{}}
}

func (t *SLOTracker) tenant(name string) *tenantSLO {
	ts, ok := t.tenants[name]
	if !ok {
		ts = &tenantSLO{latCounts: make([]int64, len(t.cfg.LatencyBounds)+1)}
		t.tenants[name] = ts
		t.order = append(t.order, name)
	}
	return ts
}

// ObserveLatency records one successful request's latency and counts it
// against the availability window as a success.
func (t *SLOTracker) ObserveLatency(tenant string, at time.Time, seconds float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenant(tenant)
	i := 0
	for i < len(t.cfg.LatencyBounds) && seconds > t.cfg.LatencyBounds[i] {
		i++
	}
	ts.latCounts[i]++
	ts.latSum += seconds
	ts.latCount++
	t.result(ts, at, false)
}

// ObserveError counts one failed (or throttled) request against the
// tenant's error budget.
func (t *SLOTracker) ObserveError(tenant string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.result(t.tenant(tenant), at, true)
}

func (t *SLOTracker) result(ts *tenantSLO, at time.Time, isErr bool) {
	ts.total++
	if isErr {
		ts.errors++
	}
	sec := at.Unix()
	n := len(ts.cells)
	if n == 0 || ts.cells[n-1].sec != sec {
		ts.cells = append(ts.cells, sloCell{sec: sec})
		n++
		keep := int(t.cfg.Window/time.Second) + 1
		if over := n - keep; over > 0 {
			ts.cells = append(ts.cells[:0], ts.cells[over:]...)
			n = len(ts.cells)
		}
	}
	c := &ts.cells[n-1]
	c.total++
	if isErr {
		c.errors++
	}
}

// BurnRate returns the tenant's current budget burn: windowed error
// rate divided by the budget (1-objective). 1.0 means the budget is
// being consumed exactly as provisioned; >1 means it is burning down.
func (t *SLOTracker) BurnRate(tenant string, now time.Time) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, ok := t.tenants[tenant]
	if !ok {
		return 0
	}
	_, wTotal, wErrors := t.window(ts, now)
	return burn(t.cfg.Objective, wTotal, wErrors)
}

func burn(objective float64, total, errors int64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		return 0
	}
	return float64(errors) / float64(total) / budget
}

// window sums cells inside the lookback.
func (t *SLOTracker) window(ts *tenantSLO, now time.Time) (secs int64, total, errors int64) {
	lo := now.Add(-t.cfg.Window).Unix()
	for _, c := range ts.cells {
		if c.sec <= lo {
			continue
		}
		total += c.total
		errors += c.errors
	}
	return int64(t.cfg.Window / time.Second), total, errors
}

// SLOStatus is one tenant's SLO state on the wire. It carries the raw
// latency bucket counts so an aggregator (the fleet router) can merge
// tenants across shards exactly and re-interpolate fleet percentiles.
type SLOStatus struct {
	Tenant        string    `json:"tenant"`
	Objective     float64   `json:"objective"`
	Total         int64     `json:"total"`
	Errors        int64     `json:"errors"`
	ErrorRate     float64   `json:"error_rate"`
	P50Millis     float64   `json:"p50_ms"`
	P99Millis     float64   `json:"p99_ms"`
	BurnRate      float64   `json:"burn_rate"`
	WindowSeconds int64     `json:"window_seconds"`
	WindowTotal   int64     `json:"window_total"`
	WindowErrors  int64     `json:"window_errors"`
	LatencyBounds []float64 `json:"latency_bounds,omitempty"`
	LatencyCounts []int64   `json:"latency_counts,omitempty"` // per-bucket, len(bounds)+1
	LatencySum    float64   `json:"latency_sum"`
	LatencyCount  int64     `json:"latency_count"`
}

// Status reports every tenant in first-seen order.
func (t *SLOTracker) Status(now time.Time) []SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.order))
	for _, name := range t.order {
		ts := t.tenants[name]
		wSecs, wTotal, wErrors := t.window(ts, now)
		st := SLOStatus{
			Tenant:        name,
			Objective:     t.cfg.Objective,
			Total:         ts.total,
			Errors:        ts.errors,
			P50Millis:     PercentileFromBuckets(t.cfg.LatencyBounds, ts.latCounts, 0.50) * 1000,
			P99Millis:     PercentileFromBuckets(t.cfg.LatencyBounds, ts.latCounts, 0.99) * 1000,
			BurnRate:      burn(t.cfg.Objective, wTotal, wErrors),
			WindowSeconds: wSecs,
			WindowTotal:   wTotal,
			WindowErrors:  wErrors,
			LatencyBounds: t.cfg.LatencyBounds,
			LatencyCounts: append([]int64(nil), ts.latCounts...),
			LatencySum:    ts.latSum,
			LatencyCount:  ts.latCount,
		}
		if ts.total > 0 {
			st.ErrorRate = float64(ts.errors) / float64(ts.total)
		}
		out = append(out, st)
	}
	return out
}

// PercentileFromBuckets linearly interpolates the q-quantile (q in
// [0,1]) from cumulative-style histogram data: bounds are ascending
// upper bounds in seconds, counts are per-bucket with one extra
// overflow bucket. Returns 0 when there are no observations; the
// overflow bucket clamps to the highest bound.
func PercentileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// MergeSLO merges per-shard statuses into one row per tenant: counts
// add, percentiles re-interpolate from the summed buckets, burn rate
// recomputes from the summed windows. Rows whose bucket layouts do not
// match the first row seen for that tenant keep counts but contribute
// no latency detail (mixed-version fleets degrade gracefully).
func MergeSLO(groups ...[]SLOStatus) []SLOStatus {
	var order []string
	merged := map[string]*SLOStatus{}
	for _, sts := range groups {
		for _, st := range sts {
			m, ok := merged[st.Tenant]
			if !ok {
				cp := st
				cp.LatencyBounds = append([]float64(nil), st.LatencyBounds...)
				cp.LatencyCounts = append([]int64(nil), st.LatencyCounts...)
				merged[st.Tenant] = &cp
				order = append(order, st.Tenant)
				continue
			}
			m.Total += st.Total
			m.Errors += st.Errors
			m.WindowTotal += st.WindowTotal
			m.WindowErrors += st.WindowErrors
			m.LatencySum += st.LatencySum
			m.LatencyCount += st.LatencyCount
			if len(st.LatencyCounts) == len(m.LatencyCounts) && sameBounds(st.LatencyBounds, m.LatencyBounds) {
				for i, c := range st.LatencyCounts {
					m.LatencyCounts[i] += c
				}
			}
		}
	}
	out := make([]SLOStatus, 0, len(order))
	for _, tenant := range order {
		m := merged[tenant]
		m.P50Millis = PercentileFromBuckets(m.LatencyBounds, m.LatencyCounts, 0.50) * 1000
		m.P99Millis = PercentileFromBuckets(m.LatencyBounds, m.LatencyCounts, 0.99) * 1000
		m.ErrorRate = 0
		if m.Total > 0 {
			m.ErrorRate = float64(m.Errors) / float64(m.Total)
		}
		m.BurnRate = burn(m.Objective, m.WindowTotal, m.WindowErrors)
		out = append(out, *m)
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
