package telem

import (
	"encoding/json"
	"sync"
	"time"
)

// Well-known series names. Keys are the tenant (for request-scoped
// series) or the JoinKey (for join-scoped series).
const (
	SeriesJoinLatency      = "join_latency_seconds"
	SeriesJoinErrors       = "join_errors"
	SeriesStragglerRatio   = "straggler_ratio"
	SeriesReplicationBytes = "replication_bytes"
	SeriesShuffleBytes     = "shuffle_bytes"
)

// Config parameterizes a Hub.
type Config struct {
	// Resolutions for the rollup store; nil selects DefaultResolutions.
	Resolutions []Resolution
	// MaxSeries caps distinct series; <=0 selects DefaultMaxSeries.
	MaxSeries int
	// EventCap bounds the anomaly event log; <=0 selects
	// DefaultEventCap.
	EventCap int
	// SLO parameterizes the per-tenant tracker.
	SLO SLOConfig
	// Detector parameterizes the anomaly rules.
	Detector DetectorConfig
}

// Collector feeds one sampling tick; implementations call sample once
// per gauge they want recorded.
type Collector func(sample func(name, key string, v float64))

// Hub ties the rollup store, SLO tracker, anomaly detector, and event
// log together behind the observation API the service and router use.
type Hub struct {
	Store  *Store
	SLO    *SLOTracker
	Events *EventLog

	detector *Detector

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewHub builds a hub with defaults applied. No goroutines are started;
// call Start to add a periodic gauge sampler.
func NewHub(cfg Config) *Hub {
	events := NewEventLog(cfg.EventCap)
	return &Hub{
		Store:    NewStore(cfg.Resolutions, cfg.MaxSeries),
		SLO:      NewSLOTracker(cfg.SLO),
		Events:   events,
		detector: NewDetector(cfg.Detector, events),
	}
}

// ObserveJoin records one completed join for a tenant: latency series,
// SLO success + latency, and a burn-rate check.
func (h *Hub) ObserveJoin(tenant string, at time.Time, seconds float64) {
	h.Store.Observe(SeriesJoinLatency, tenant, at, seconds)
	h.SLO.ObserveLatency(tenant, at, seconds)
	h.detector.ObserveBurn(tenant, at, h.SLO.BurnRate(tenant, at))
}

// ObserveJoinError records one failed or throttled join for a tenant:
// error series, SLO error, and a burn-rate check.
func (h *Hub) ObserveJoinError(tenant string, at time.Time) {
	h.Store.Observe(SeriesJoinErrors, tenant, at, 1)
	h.SLO.ObserveError(tenant, at)
	h.detector.ObserveBurn(tenant, at, h.SLO.BurnRate(tenant, at))
}

// ObserveSkew records one join's skew report keyed by JoinKey: straggler
// ratio, replication and shuffle bytes series, plus the straggler and
// replication anomaly rules.
func (h *Hub) ObserveSkew(tenant, key string, at time.Time, stragglerRatio float64, replicationBytes, shuffleBytes int64) {
	if stragglerRatio > 0 {
		h.Store.Observe(SeriesStragglerRatio, key, at, stragglerRatio)
	}
	if replicationBytes > 0 {
		h.Store.Observe(SeriesReplicationBytes, key, at, float64(replicationBytes))
	}
	if shuffleBytes > 0 {
		h.Store.Observe(SeriesShuffleBytes, key, at, float64(shuffleBytes))
	}
	h.detector.ObserveSkew(tenant, key, at, stragglerRatio, replicationBytes)
}

// Sample records one gauge observation directly.
func (h *Hub) Sample(at time.Time, name, key string, v float64) {
	h.Store.Observe(name, key, at, v)
}

// Start launches a sampling loop invoking collect every interval.
// Calling Start twice replaces the previous loop.
func (h *Hub) Start(every time.Duration, collect Collector) {
	if every <= 0 || collect == nil {
		return
	}
	h.Stop()
	h.mu.Lock()
	stop := make(chan struct{})
	done := make(chan struct{})
	h.stop, h.done = stop, done
	h.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				collect(func(name, key string, v float64) {
					h.Store.Observe(name, key, now, v)
				})
			}
		}
	}()
}

// Stop terminates the sampling loop, if any, and waits for it.
func (h *Hub) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// hubSnap is the persisted form of a hub: series history and the event
// log. SLO counters are deliberately session-scoped (like /metrics) —
// an error budget should not survive a deploy.
type hubSnap struct {
	Store  storeSnap `json:"store"`
	Events []Event   `json:"events,omitempty"`
}

// MarshalSnapshot serializes series history and events to JSON.
func (h *Hub) MarshalSnapshot() ([]byte, error) {
	return json.Marshal(hubSnap{Store: h.Store.snapshot(), Events: h.Events.snapshot()})
}

// RestoreSnapshot replaces series history and events with a snapshot
// produced by MarshalSnapshot.
func (h *Hub) RestoreSnapshot(b []byte) error {
	var snap hubSnap
	if err := json.Unmarshal(b, &snap); err != nil {
		return err
	}
	h.Store.restore(snap.Store)
	h.Events.restore(snap.Events)
	return nil
}
