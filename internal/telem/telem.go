// Package telem is the continuous-telemetry layer: a zero-dependency
// in-process time-series store with multi-resolution rollups, a
// per-tenant SLO tracker (latency percentiles from histogram
// interpolation, error-budget burn rate), and an anomaly detector
// emitting structured events into a bounded log.
//
// Every metric elsewhere in the system is a point-in-time counter; the
// paper's adaptive-replication decisions (and the feedback-driven
// planner the ROADMAP calls for) need *history*. telem keeps that
// history cheap and bounded: each series holds fixed-capacity rings of
// min/max/sum/count buckets at 1s/10s/1m resolutions, so a window
// query costs a slice copy and the whole store snapshots to a small
// JSON blob the durable store can persist across restarts.
package telem

import (
	"fmt"
	"sync"
	"time"
)

// Bucket is one rollup cell: the reduction of every observation whose
// timestamp falls into [Start, Start+step) seconds.
type Bucket struct {
	Start int64   `json:"start"` // unix seconds, aligned to the resolution step
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Mean returns the bucket's average observation (0 when empty).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Resolution is one rollup level of every series.
type Resolution struct {
	Name string `json:"name"` // wire name, e.g. "10s"
	Step int64  `json:"step"` // seconds per bucket
	Keep int    `json:"keep"` // buckets retained (ring capacity)
}

// DefaultResolutions keep 2 minutes at 1s, 30 minutes at 10s, and 4
// hours at 1m — enough for live dashboards at the fine end and for the
// planner's drift detection at the coarse end.
var DefaultResolutions = []Resolution{
	{Name: "1s", Step: 1, Keep: 120},
	{Name: "10s", Step: 10, Keep: 180},
	{Name: "1m", Step: 60, Keep: 240},
}

// series is one (name, key) line with a bucket ring per resolution.
type series struct {
	name, key string
	rings     [][]Bucket
}

// Store is the rollup store. All methods are safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	res       []Resolution
	series    map[string]*series
	order     []string // insertion order of series map keys
	maxSeries int
	dropped   int64 // observations refused because the series cap was hit
}

// DefaultMaxSeries bounds distinct (name, key) series; label values can
// ride in from request headers, so the cap keeps a hostile tenant from
// growing the store without bound.
const DefaultMaxSeries = 1024

// NewStore builds a store. nil resolutions selects DefaultResolutions;
// maxSeries <= 0 selects DefaultMaxSeries.
func NewStore(res []Resolution, maxSeries int) *Store {
	if len(res) == 0 {
		res = DefaultResolutions
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	return &Store{res: res, series: map[string]*series{}, maxSeries: maxSeries}
}

// mapKey length-prefixes name and key so hostile values cannot alias
// two series (same construction as the metric registries).
func mapKey(name, key string) string {
	return fmt.Sprintf("%d:%s%d:%s", len(name), name, len(key), key)
}

// Observe folds one observation into every resolution of (name, key).
func (st *Store) Observe(name, key string, at time.Time, v float64) {
	sec := at.Unix()
	st.mu.Lock()
	defer st.mu.Unlock()
	mk := mapKey(name, key)
	s, ok := st.series[mk]
	if !ok {
		if len(st.series) >= st.maxSeries {
			st.dropped++
			return
		}
		s = &series{name: name, key: key, rings: make([][]Bucket, len(st.res))}
		st.series[mk] = s
		st.order = append(st.order, mk)
	}
	for i, r := range st.res {
		start := sec - sec%r.Step
		ring := s.rings[i]
		n := len(ring)
		switch {
		case n == 0 || ring[n-1].Start < start:
			ring = append(ring, Bucket{Start: start, Min: v, Max: v, Sum: v, Count: 1})
			if over := len(ring) - r.Keep; over > 0 {
				ring = append(ring[:0], ring[over:]...)
			}
		case ring[n-1].Start == start:
			fold(&ring[n-1], v)
		default:
			// Late observation: fold into the matching older bucket if it
			// is still retained, else drop it silently (it is out of every
			// window anyway).
			for j := n - 2; j >= 0; j-- {
				if ring[j].Start == start {
					fold(&ring[j], v)
					break
				}
				if ring[j].Start < start {
					break
				}
			}
		}
		s.rings[i] = ring
	}
}

func fold(b *Bucket, v float64) {
	if v < b.Min {
		b.Min = v
	}
	if v > b.Max {
		b.Max = v
	}
	b.Sum += v
	b.Count++
}

// Dropped reports observations refused because the series cap was hit.
func (st *Store) Dropped() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Len reports the number of live series.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}

// SeriesDump is one series at one resolution on the wire.
type SeriesDump struct {
	Name    string   `json:"name"`
	Key     string   `json:"key,omitempty"`
	Res     string   `json:"res"`
	Step    int64    `json:"step"`
	Buckets []Bucket `json:"buckets"`
}

// Dump returns matching series in insertion order. Empty name, key or
// res match everything; since > 0 drops buckets that end before it
// (unix seconds). Buckets are copies — callers own them.
func (st *Store) Dump(name, key, res string, since int64) []SeriesDump {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []SeriesDump
	for _, mk := range st.order {
		s := st.series[mk]
		if name != "" && s.name != name {
			continue
		}
		if key != "" && s.key != key {
			continue
		}
		for i, r := range st.res {
			if res != "" && r.Name != res {
				continue
			}
			ring := s.rings[i]
			lo := 0
			for lo < len(ring) && ring[lo].Start+r.Step <= since {
				lo++
			}
			if lo == len(ring) {
				continue
			}
			out = append(out, SeriesDump{
				Name: s.name, Key: s.key, Res: r.Name, Step: r.Step,
				Buckets: append([]Bucket(nil), ring[lo:]...),
			})
		}
	}
	return out
}

// storeSnap is the persistence form of a Store.
type storeSnap struct {
	Resolutions []Resolution `json:"resolutions"`
	Series      []seriesSnap `json:"series"`
	Dropped     int64        `json:"dropped,omitempty"`
}

type seriesSnap struct {
	Name  string     `json:"name"`
	Key   string     `json:"key"`
	Rings [][]Bucket `json:"rings"`
}

func (st *Store) snapshot() storeSnap {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := storeSnap{Resolutions: st.res, Dropped: st.dropped}
	for _, mk := range st.order {
		s := st.series[mk]
		rings := make([][]Bucket, len(s.rings))
		for i, r := range s.rings {
			rings[i] = append([]Bucket(nil), r...)
		}
		snap.Series = append(snap.Series, seriesSnap{Name: s.name, Key: s.key, Rings: rings})
	}
	return snap
}

// restore replaces the store contents with a snapshot. Snapshots taken
// under a different resolution set are re-folded bucket by bucket so a
// config change cannot corrupt the rings.
func (st *Store) restore(snap storeSnap) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.series = map[string]*series{}
	st.order = nil
	st.dropped = snap.Dropped
	same := len(snap.Resolutions) == len(st.res)
	if same {
		for i := range st.res {
			if snap.Resolutions[i] != st.res[i] {
				same = false
				break
			}
		}
	}
	for _, ss := range snap.Series {
		if len(st.series) >= st.maxSeries {
			break
		}
		s := &series{name: ss.Name, key: ss.Key, rings: make([][]Bucket, len(st.res))}
		if same && len(ss.Rings) == len(st.res) {
			for i, r := range ss.Rings {
				if over := len(r) - st.res[i].Keep; over > 0 {
					r = r[over:]
				}
				s.rings[i] = append([]Bucket(nil), r...)
			}
		} else if len(ss.Rings) > 0 {
			// Resolution drift: refold the finest ring we were given.
			for _, b := range ss.Rings[0] {
				for i, r := range st.res {
					start := b.Start - b.Start%r.Step
					ring := s.rings[i]
					if n := len(ring); n > 0 && ring[n-1].Start == start {
						c := &ring[n-1]
						if b.Min < c.Min {
							c.Min = b.Min
						}
						if b.Max > c.Max {
							c.Max = b.Max
						}
						c.Sum += b.Sum
						c.Count += b.Count
					} else {
						ring = append(ring, b)
						ring[len(ring)-1].Start = start
						if over := len(ring) - r.Keep; over > 0 {
							ring = append(ring[:0], ring[over:]...)
						}
					}
					s.rings[i] = ring
				}
			}
		}
		mk := mapKey(ss.Name, ss.Key)
		st.series[mk] = s
		st.order = append(st.order, mk)
	}
}

// MergeSeries aggregates dumps from several sources (shards) into one
// fleet view: buckets with the same (name, key, res, start) are merged
// — sums and counts add, min/max extend. Output series follow first
// appearance order; buckets are sorted by start.
func MergeSeries(groups ...[]SeriesDump) []SeriesDump {
	type agg struct {
		dump    SeriesDump
		byStart map[int64]int // start -> index into dump.Buckets
	}
	var order []string
	merged := map[string]*agg{}
	for _, dumps := range groups {
		for _, d := range dumps {
			mk := mapKey(d.Name, d.Key) + "\xff" + d.Res
			a, ok := merged[mk]
			if !ok {
				a = &agg{
					dump:    SeriesDump{Name: d.Name, Key: d.Key, Res: d.Res, Step: d.Step},
					byStart: map[int64]int{},
				}
				merged[mk] = a
				order = append(order, mk)
			}
			for _, b := range d.Buckets {
				if i, ok := a.byStart[b.Start]; ok {
					c := &a.dump.Buckets[i]
					if b.Min < c.Min {
						c.Min = b.Min
					}
					if b.Max > c.Max {
						c.Max = b.Max
					}
					c.Sum += b.Sum
					c.Count += b.Count
				} else {
					a.byStart[b.Start] = len(a.dump.Buckets)
					a.dump.Buckets = append(a.dump.Buckets, b)
				}
			}
		}
	}
	out := make([]SeriesDump, 0, len(order))
	for _, mk := range order {
		a := merged[mk]
		bs := a.dump.Buckets
		for i := 1; i < len(bs); i++ {
			for j := i; j > 0 && bs[j].Start < bs[j-1].Start; j-- {
				bs[j], bs[j-1] = bs[j-1], bs[j]
			}
		}
		out = append(out, a.dump)
	}
	return out
}

// JoinKey names the per-join series key for a (R, S, eps) combination.
func JoinKey(r, s string, eps float64) string {
	return fmt.Sprintf("%s:%s:%g", r, s, eps)
}
