package telem

import (
	"fmt"
	"io"
	"runtime"
)

// RuntimeStats is a point-in-time sample of the Go runtime.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	GCPauseSeconds float64 `json:"gc_pause_seconds_total"`
	GCCycles       uint32  `json:"gc_cycles"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// ReadRuntime samples the runtime. runtime.ReadMemStats stops the world
// briefly; callers should only invoke it on scrape, not in hot paths.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseSeconds: float64(ms.PauseTotalNs) / 1e9,
		GCCycles:       ms.NumGC,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}

// RenderRuntime writes the runtime sample in Prometheus exposition
// format; both sjoind and the router append it to their /metrics.
func RenderRuntime(w io.Writer) {
	rs := ReadRuntime()
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines that currently exist.\n")
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
	fmt.Fprintf(w, "go_goroutines %d\n", rs.Goroutines)
	fmt.Fprintf(w, "# HELP go_memstats_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE go_memstats_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "go_memstats_heap_alloc_bytes %d\n", rs.HeapAllocBytes)
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %g\n", rs.GCPauseSeconds)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", rs.GCCycles)
	fmt.Fprintf(w, "# HELP go_gomaxprocs The GOMAXPROCS setting.\n")
	fmt.Fprintf(w, "# TYPE go_gomaxprocs gauge\n")
	fmt.Fprintf(w, "go_gomaxprocs %d\n", rs.GOMAXPROCS)
}

// RuntimeVars returns the sample as a JSON-friendly map for /vars-style
// snapshots.
func RuntimeVars() map[string]any {
	rs := ReadRuntime()
	return map[string]any{
		"go_goroutines":                rs.Goroutines,
		"go_memstats_heap_alloc_bytes": rs.HeapAllocBytes,
		"go_gc_pause_seconds_total":    rs.GCPauseSeconds,
		"go_gc_cycles_total":           rs.GCCycles,
		"go_gomaxprocs":                rs.GOMAXPROCS,
	}
}
