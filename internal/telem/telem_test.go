package telem

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestTelemRollupResolutions(t *testing.T) {
	st := NewStore(nil, 0)
	base := int64(1_000_000) // multiple of 10; 1m bucket differs
	for i := int64(0); i < 25; i++ {
		st.Observe("lat", "a", at(base+i), float64(i))
	}
	dumps := st.Dump("lat", "a", "1s", 0)
	if len(dumps) != 1 {
		t.Fatalf("1s dumps = %d, want 1", len(dumps))
	}
	if got := len(dumps[0].Buckets); got != 25 {
		t.Fatalf("1s buckets = %d, want 25", got)
	}
	b0 := dumps[0].Buckets[0]
	if b0.Count != 1 || b0.Min != 0 || b0.Max != 0 {
		t.Fatalf("first 1s bucket = %+v", b0)
	}

	dumps = st.Dump("lat", "a", "10s", 0)
	if len(dumps) != 1 || len(dumps[0].Buckets) != 3 {
		t.Fatalf("10s dump = %+v", dumps)
	}
	b := dumps[0].Buckets[0]
	if b.Count != 10 || b.Min != 0 || b.Max != 9 || b.Sum != 45 {
		t.Fatalf("10s first bucket = %+v", b)
	}
	b = dumps[0].Buckets[2]
	if b.Count != 5 || b.Min != 20 || b.Max != 24 {
		t.Fatalf("10s last bucket = %+v", b)
	}

	dumps = st.Dump("lat", "a", "1m", 0)
	var total int64
	for _, d := range dumps {
		for _, b := range d.Buckets {
			total += b.Count
		}
	}
	if total != 25 {
		t.Fatalf("1m total count = %d, want 25", total)
	}
}

func TestTelemRingEviction(t *testing.T) {
	res := []Resolution{{Name: "1s", Step: 1, Keep: 5}}
	st := NewStore(res, 0)
	for i := int64(0); i < 12; i++ {
		st.Observe("g", "", at(100+i), 1)
	}
	d := st.Dump("g", "", "1s", 0)
	if len(d) != 1 || len(d[0].Buckets) != 5 {
		t.Fatalf("dump = %+v", d)
	}
	if d[0].Buckets[0].Start != 107 || d[0].Buckets[4].Start != 111 {
		t.Fatalf("retained window = [%d, %d], want [107, 111]",
			d[0].Buckets[0].Start, d[0].Buckets[4].Start)
	}
}

func TestTelemOutOfOrderObservation(t *testing.T) {
	st := NewStore([]Resolution{{Name: "1s", Step: 1, Keep: 10}}, 0)
	st.Observe("g", "", at(100), 1)
	st.Observe("g", "", at(103), 1)
	st.Observe("g", "", at(101), 7) // late, bucket never materialized: dropped
	st.Observe("g", "", at(100), 5) // late, bucket exists: folded
	d := st.Dump("g", "", "1s", 0)
	if len(d) != 1 || len(d[0].Buckets) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	b := d[0].Buckets[0]
	if b.Start != 100 || b.Count != 2 || b.Max != 5 || b.Sum != 6 {
		t.Fatalf("late fold bucket = %+v", b)
	}
}

func TestTelemWindowFilter(t *testing.T) {
	st := NewStore([]Resolution{{Name: "1s", Step: 1, Keep: 100}}, 0)
	for i := int64(0); i < 10; i++ {
		st.Observe("g", "", at(200+i), 1)
	}
	d := st.Dump("g", "", "1s", 205)
	if len(d) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	if first := d[0].Buckets[0].Start; first != 205 {
		t.Fatalf("windowed first start = %d, want 205", first)
	}
}

func TestTelemSeriesCap(t *testing.T) {
	st := NewStore(nil, 3)
	for i := 0; i < 5; i++ {
		st.Observe("g", fmt.Sprintf("k%d", i), at(100), 1)
	}
	if st.Len() != 3 {
		t.Fatalf("series = %d, want 3", st.Len())
	}
	if st.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped())
	}
}

func TestTelemKeyAliasing(t *testing.T) {
	st := NewStore(nil, 0)
	// Without length prefixing these two (name, key) pairs collide.
	st.Observe("ab", "c", at(100), 1)
	st.Observe("a", "bc", at(100), 1)
	if st.Len() != 2 {
		t.Fatalf("series = %d, want 2 (aliased)", st.Len())
	}
}

func TestTelemSnapshotRoundTrip(t *testing.T) {
	h := NewHub(Config{})
	base := time.Now().Add(-30 * time.Second)
	for i := 0; i < 20; i++ {
		h.ObserveJoin("acme", base.Add(time.Duration(i)*time.Second), 0.01*float64(i+1))
	}
	h.Events.Append(Event{UnixMS: base.UnixMilli(), Kind: EventStragglerSpike, Message: "x"})
	blob, err := h.MarshalSnapshot()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h2 := NewHub(Config{})
	if err := h2.RestoreSnapshot(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	d1 := h.Store.Dump(SeriesJoinLatency, "acme", "1s", 0)
	d2 := h2.Store.Dump(SeriesJoinLatency, "acme", "1s", 0)
	if len(d1) != 1 || len(d2) != 1 || len(d1[0].Buckets) != len(d2[0].Buckets) {
		t.Fatalf("bucket mismatch: %d vs %d dumps", len(d1), len(d2))
	}
	for i := range d1[0].Buckets {
		if d1[0].Buckets[i] != d2[0].Buckets[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, d1[0].Buckets[i], d2[0].Buckets[i])
		}
	}
	if evs := h2.Events.Recent(0); len(evs) != 1 || evs[0].Kind != EventStragglerSpike {
		t.Fatalf("restored events = %+v", evs)
	}
}

func TestTelemSnapshotResolutionDrift(t *testing.T) {
	h := NewHub(Config{Resolutions: []Resolution{{Name: "1s", Step: 1, Keep: 50}}})
	for i := int64(0); i < 20; i++ {
		h.Sample(at(1000+i), "g", "", float64(i))
	}
	blob, err := h.MarshalSnapshot()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h2 := NewHub(Config{Resolutions: []Resolution{{Name: "10s", Step: 10, Keep: 10}}})
	if err := h2.RestoreSnapshot(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	d := h2.Store.Dump("g", "", "10s", 0)
	if len(d) != 1 || len(d[0].Buckets) != 2 {
		t.Fatalf("refolded dump = %+v", d)
	}
	var total int64
	for _, b := range d[0].Buckets {
		total += b.Count
	}
	if total != 20 {
		t.Fatalf("refolded total = %d, want 20", total)
	}
}

func TestTelemMergeSeries(t *testing.T) {
	a := []SeriesDump{{
		Name: "lat", Key: "t", Res: "1s", Step: 1,
		Buckets: []Bucket{{Start: 10, Min: 1, Max: 2, Sum: 3, Count: 2}},
	}}
	b := []SeriesDump{{
		Name: "lat", Key: "t", Res: "1s", Step: 1,
		Buckets: []Bucket{
			{Start: 10, Min: 0.5, Max: 5, Sum: 5.5, Count: 2},
			{Start: 9, Min: 1, Max: 1, Sum: 1, Count: 1},
		},
	}, {
		Name: "other", Key: "", Res: "1s", Step: 1,
		Buckets: []Bucket{{Start: 11, Min: 1, Max: 1, Sum: 1, Count: 1}},
	}}
	out := MergeSeries(a, b)
	if len(out) != 2 {
		t.Fatalf("merged series = %d, want 2", len(out))
	}
	m := out[0]
	if m.Name != "lat" || len(m.Buckets) != 2 {
		t.Fatalf("merged = %+v", m)
	}
	if m.Buckets[0].Start != 9 || m.Buckets[1].Start != 10 {
		t.Fatalf("buckets not sorted: %+v", m.Buckets)
	}
	got := m.Buckets[1]
	if got.Min != 0.5 || got.Max != 5 || got.Sum != 8.5 || got.Count != 4 {
		t.Fatalf("merged bucket = %+v", got)
	}
}

func TestTelemPercentileInterpolation(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []int64{0, 100, 0, 0} // everything in (1, 2]
	p50 := PercentileFromBuckets(bounds, counts, 0.50)
	if p50 < 1.49 || p50 > 1.51 {
		t.Fatalf("p50 = %g, want ~1.5", p50)
	}
	p99 := PercentileFromBuckets(bounds, counts, 0.99)
	if p99 < 1.98 || p99 > 2 {
		t.Fatalf("p99 = %g, want ~1.99", p99)
	}
	// Overflow bucket clamps to the top bound.
	if got := PercentileFromBuckets(bounds, []int64{0, 0, 0, 10}, 0.5); got != 4 {
		t.Fatalf("overflow percentile = %g, want 4", got)
	}
	if got := PercentileFromBuckets(bounds, []int64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("empty percentile = %g, want 0", got)
	}
}

func TestTelemSLOTracking(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objective: 0.9, Window: 10 * time.Second})
	now := time.Unix(5000, 0)
	for i := 0; i < 90; i++ {
		tr.ObserveLatency("acme", now, 0.02)
	}
	for i := 0; i < 10; i++ {
		tr.ObserveError("acme", now)
	}
	sts := tr.Status(now)
	if len(sts) != 1 {
		t.Fatalf("status rows = %d", len(sts))
	}
	st := sts[0]
	if st.Tenant != "acme" || st.Total != 100 || st.Errors != 10 {
		t.Fatalf("status = %+v", st)
	}
	if math.Abs(st.ErrorRate-0.10) > 1e-9 {
		t.Fatalf("error rate = %g", st.ErrorRate)
	}
	// 10% errors against a 10% budget = burn rate 1.
	if math.Abs(st.BurnRate-1.0) > 1e-9 {
		t.Fatalf("burn = %g, want 1", st.BurnRate)
	}
	if st.P50Millis <= 10 || st.P50Millis > 25 {
		t.Fatalf("p50 = %g ms, want in (10, 25]", st.P50Millis)
	}
	// Outside the window the burn decays to 0 but totals persist.
	later := now.Add(30 * time.Second)
	st = tr.Status(later)[0]
	if st.BurnRate != 0 || st.WindowTotal != 0 {
		t.Fatalf("post-window status = %+v", st)
	}
	if st.Total != 100 {
		t.Fatalf("lifetime total lost: %+v", st)
	}
}

func TestTelemMergeSLO(t *testing.T) {
	bounds := []float64{1, 2}
	a := []SLOStatus{{
		Tenant: "t", Objective: 0.9, Total: 50, Errors: 5,
		WindowTotal: 50, WindowErrors: 5, WindowSeconds: 60,
		LatencyBounds: bounds, LatencyCounts: []int64{50, 0, 0},
		LatencySum: 10, LatencyCount: 50,
	}}
	b := []SLOStatus{{
		Tenant: "t", Objective: 0.9, Total: 50, Errors: 15,
		WindowTotal: 50, WindowErrors: 15, WindowSeconds: 60,
		LatencyBounds: bounds, LatencyCounts: []int64{0, 50, 0},
		LatencySum: 80, LatencyCount: 50,
	}}
	out := MergeSLO(a, b)
	if len(out) != 1 {
		t.Fatalf("merged rows = %d", len(out))
	}
	m := out[0]
	if m.Total != 100 || m.Errors != 20 {
		t.Fatalf("merged = %+v", m)
	}
	if math.Abs(m.ErrorRate-0.2) > 1e-9 {
		t.Fatalf("error rate = %g", m.ErrorRate)
	}
	// 20% window errors / 10% budget = burn 2.
	if math.Abs(m.BurnRate-2.0) > 1e-9 {
		t.Fatalf("burn = %g", m.BurnRate)
	}
	// Half the traffic <=1s, half in (1,2]: p50 at the boundary, p99 near 2.
	if m.P50Millis > 1000+1e-6 || m.P50Millis < 900 {
		t.Fatalf("merged p50 = %g ms", m.P50Millis)
	}
	if m.P99Millis < 1900 {
		t.Fatalf("merged p99 = %g ms", m.P99Millis)
	}
}

func TestTelemEventLogBounded(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{UnixMS: int64(i), Kind: "k"})
	}
	evs := l.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	if evs[0].UnixMS != 6 || evs[3].UnixMS != 9 {
		t.Fatalf("retained window = %+v", evs)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	if got := l.Recent(2); len(got) != 2 || got[1].UnixMS != 9 {
		t.Fatalf("recent(2) = %+v", got)
	}
}

func TestTelemDetectorStragglerSpike(t *testing.T) {
	log := NewEventLog(0)
	d := NewDetector(DetectorConfig{StragglerRatio: 3}, log)
	now := time.Unix(1000, 0)
	d.ObserveSkew("t", "r:s:0.01", now, 1.5, 100)
	if log.Total() != 0 {
		t.Fatalf("ratio below threshold fired: %+v", log.Recent(0))
	}
	d.ObserveSkew("t", "r:s:0.01", now, 4.2, 100)
	evs := log.Recent(0)
	if len(evs) != 1 || evs[0].Kind != EventStragglerSpike || evs[0].Value != 4.2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Series != "r:s:0.01" || evs[0].Tenant != "t" {
		t.Fatalf("event attribution = %+v", evs[0])
	}
}

func TestTelemDetectorReplicationJump(t *testing.T) {
	log := NewEventLog(0)
	d := NewDetector(DetectorConfig{ReplicationFactor: 3, MinHistory: 3}, log)
	now := time.Unix(1000, 0)
	key := "r:s:0.5"
	for i := 0; i < 3; i++ {
		d.ObserveSkew("t", key, now, 1, 1000)
	}
	// Warmup complete; 10x the trailing mean must fire.
	d.ObserveSkew("t", key, now, 1, 10000)
	evs := log.Recent(0)
	if len(evs) != 1 || evs[0].Kind != EventReplicationJump {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Value != 10000 {
		t.Fatalf("event value = %+v", evs[0])
	}
	// A different key has its own trail — no cross-contamination.
	d.ObserveSkew("t", "other:s:1", now, 1, 50000)
	if log.Total() != 1 {
		t.Fatalf("fresh key fired jump: %+v", log.Recent(0))
	}
}

func TestTelemDetectorBurnEdgeTriggered(t *testing.T) {
	log := NewEventLog(0)
	d := NewDetector(DetectorConfig{BurnRate: 2}, log)
	now := time.Unix(1000, 0)
	d.ObserveBurn("t", now, 3)
	d.ObserveBurn("t", now, 4) // still burning: no second event
	if log.Total() != 1 {
		t.Fatalf("burn events = %d, want 1 (edge-triggered)", log.Total())
	}
	d.ObserveBurn("t", now, 1.5) // above half threshold: stays latched
	d.ObserveBurn("t", now, 3)
	if log.Total() != 1 {
		t.Fatalf("re-fired before re-arm: %d", log.Total())
	}
	d.ObserveBurn("t", now, 0.5) // below half threshold: re-arms
	d.ObserveBurn("t", now, 3)
	if log.Total() != 2 {
		t.Fatalf("burn events = %d, want 2 after re-arm", log.Total())
	}
}

func TestTelemHubObserveFlow(t *testing.T) {
	h := NewHub(Config{
		SLO:      SLOConfig{Objective: 0.9, Window: time.Minute},
		Detector: DetectorConfig{StragglerRatio: 2, BurnRate: 1.5},
	})
	now := time.Now()
	for i := 0; i < 8; i++ {
		h.ObserveJoin("acme", now, 0.05)
	}
	h.ObserveSkew("acme", JoinKey("r", "s", 0.01), now, 5.0, 4096, 128)
	for i := 0; i < 8; i++ {
		h.ObserveJoinError("noisy", now)
	}
	if d := h.Store.Dump(SeriesJoinLatency, "acme", "1s", 0); len(d) == 0 {
		t.Fatal("no latency series")
	}
	if d := h.Store.Dump(SeriesStragglerRatio, "r:s:0.01", "1s", 0); len(d) == 0 {
		t.Fatal("no straggler series")
	}
	kinds := map[string]int{}
	for _, e := range h.Events.Recent(0) {
		kinds[e.Kind]++
	}
	if kinds[EventStragglerSpike] != 1 {
		t.Fatalf("straggler events = %+v", kinds)
	}
	if kinds[EventBudgetBurn] != 1 {
		t.Fatalf("burn events = %+v", kinds)
	}
	var noisy *SLOStatus
	for _, st := range h.SLO.Status(now) {
		if st.Tenant == "noisy" {
			s := st
			noisy = &s
		}
	}
	if noisy == nil || noisy.BurnRate < 1.5 {
		t.Fatalf("noisy SLO = %+v", noisy)
	}
}

func TestTelemHubSamplerLoop(t *testing.T) {
	h := NewHub(Config{})
	var mu sync.Mutex
	ticks := 0
	h.Start(5*time.Millisecond, func(sample func(name, key string, v float64)) {
		mu.Lock()
		ticks++
		mu.Unlock()
		sample("queue_depth", "", 7)
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := ticks
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	if d := h.Store.Dump("queue_depth", "", "1s", 0); len(d) == 0 {
		t.Fatal("sampler recorded nothing")
	}
}

func TestTelemRuntimeRender(t *testing.T) {
	var buf bytes.Buffer
	RenderRuntime(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"go_goroutines ",
		"# TYPE go_memstats_heap_alloc_bytes gauge",
		"# TYPE go_gc_pause_seconds_total counter",
		"# TYPE go_gomaxprocs gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
	vars := RuntimeVars()
	if vars["go_goroutines"].(int) < 1 {
		t.Fatalf("vars = %+v", vars)
	}
	if vars["go_gomaxprocs"].(int) < 1 {
		t.Fatalf("vars = %+v", vars)
	}
}

func TestTelemConcurrentObserve(t *testing.T) {
	h := NewHub(Config{})
	var wg sync.WaitGroup
	now := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 200; i++ {
				h.ObserveJoin(tenant, now, 0.001)
				h.ObserveSkew(tenant, "r:s:1", now, 1.0, 64, 16)
				if i%10 == 0 {
					h.ObserveJoinError(tenant, now)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, st := range h.SLO.Status(now) {
		total += st.Total
	}
	if want := int64(8 * (200 + 20)); total != want {
		t.Fatalf("total SLO observations = %d, want %d", total, want)
	}
}
