package telem

import (
	"fmt"
	"sync"
	"time"
)

// Event kinds emitted by the Detector.
const (
	EventStragglerSpike  = "straggler_spike"
	EventReplicationJump = "replication_jump"
	EventBudgetBurn      = "latency_budget_burn"
)

// Event is one structured anomaly observation.
type Event struct {
	UnixMS    int64   `json:"unix_ms"`
	Kind      string  `json:"kind"`
	Tenant    string  `json:"tenant,omitempty"`
	Series    string  `json:"series,omitempty"` // join key or series the rule fired on
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// EventLog is a bounded append-only ring of events.
type EventLog struct {
	mu     sync.Mutex
	cap    int
	events []Event
	total  int64
}

// DefaultEventCap bounds the event log.
const DefaultEventCap = 256

// NewEventLog builds a log retaining at most cap events (<=0 selects
// DefaultEventCap).
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	return &EventLog{cap: cap}
}

// Append records an event, evicting the oldest when full.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
	l.total++
	if over := len(l.events) - l.cap; over > 0 {
		l.events = append(l.events[:0], l.events[over:]...)
	}
}

// Recent returns up to limit most-recent events, oldest first.
// limit <= 0 returns everything retained.
func (l *EventLog) Recent(limit int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	evs := l.events
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	return append([]Event(nil), evs...)
}

// Total counts every event ever appended, including evicted ones.
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

func (l *EventLog) snapshot() []Event {
	return l.Recent(0)
}

func (l *EventLog) restore(evs []Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if over := len(evs) - l.cap; over > 0 {
		evs = evs[over:]
	}
	l.events = append(l.events[:0], evs...)
	if l.total < int64(len(l.events)) {
		l.total = int64(len(l.events))
	}
}

// DetectorConfig parameterizes the anomaly rules.
type DetectorConfig struct {
	// StragglerRatio fires EventStragglerSpike when a join's
	// max/median task-time ratio reaches it. Default 4.
	StragglerRatio float64
	// ReplicationFactor fires EventReplicationJump when a join's
	// replication bytes exceed this multiple of the trailing mean for
	// the same (R, S, eps) key. Default 3.
	ReplicationFactor float64
	// MinHistory is how many joins of a key must be seen before the
	// replication-jump rule arms. Default 3.
	MinHistory int
	// BurnRate fires EventBudgetBurn when a tenant's burn rate reaches
	// it; the rule is edge-triggered and re-arms when the burn falls
	// below half the threshold. Default 2.
	BurnRate float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.StragglerRatio <= 0 {
		c.StragglerRatio = 4
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 3
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 3
	}
	if c.BurnRate <= 0 {
		c.BurnRate = 2
	}
	return c
}

// trail is an exponentially-weighted trailing mean with a warmup count.
type trail struct {
	n    int
	mean float64
}

const trailAlpha = 0.3

func (t *trail) observe(v float64) {
	if t.n == 0 {
		t.mean = v
	} else {
		t.mean += trailAlpha * (v - t.mean)
	}
	t.n++
}

// Detector evaluates anomaly rules and appends hits to an EventLog.
type Detector struct {
	mu      sync.Mutex
	cfg     DetectorConfig
	log     *EventLog
	repl    map[string]*trail // per-join-key trailing replication bytes
	burning map[string]bool   // per-tenant burn edge-trigger state
}

// NewDetector builds a detector writing into log.
func NewDetector(cfg DetectorConfig, log *EventLog) *Detector {
	return &Detector{
		cfg:     cfg.withDefaults(),
		log:     log,
		repl:    map[string]*trail{},
		burning: map[string]bool{},
	}
}

// ObserveSkew evaluates the straggler and replication rules against one
// join's skew report.
func (d *Detector) ObserveSkew(tenant, key string, at time.Time, stragglerRatio float64, replicationBytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if stragglerRatio >= d.cfg.StragglerRatio {
		d.log.Append(Event{
			UnixMS: at.UnixMilli(), Kind: EventStragglerSpike, Tenant: tenant, Series: key,
			Value: stragglerRatio, Threshold: d.cfg.StragglerRatio,
			Message: fmt.Sprintf("join %s straggler ratio %.2f >= %.2f", key, stragglerRatio, d.cfg.StragglerRatio),
		})
	}
	if replicationBytes > 0 {
		tr, ok := d.repl[key]
		if !ok {
			tr = &trail{}
			d.repl[key] = tr
		}
		if tr.n >= d.cfg.MinHistory && tr.mean > 0 &&
			float64(replicationBytes) > d.cfg.ReplicationFactor*tr.mean {
			d.log.Append(Event{
				UnixMS: at.UnixMilli(), Kind: EventReplicationJump, Tenant: tenant, Series: key,
				Value: float64(replicationBytes), Threshold: d.cfg.ReplicationFactor * tr.mean,
				Message: fmt.Sprintf("join %s replicated %d bytes, %.1fx the trailing mean %.0f",
					key, replicationBytes, float64(replicationBytes)/tr.mean, tr.mean),
			})
		}
		tr.observe(float64(replicationBytes))
	}
}

// ObserveBurn evaluates the budget-burn rule for one tenant. The rule
// is edge-triggered: one event per excursion above the threshold.
func (d *Detector) ObserveBurn(tenant string, at time.Time, burnRate float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case burnRate >= d.cfg.BurnRate && !d.burning[tenant]:
		d.burning[tenant] = true
		d.log.Append(Event{
			UnixMS: at.UnixMilli(), Kind: EventBudgetBurn, Tenant: tenant,
			Value: burnRate, Threshold: d.cfg.BurnRate,
			Message: fmt.Sprintf("tenant %q burning error budget at %.2fx (threshold %.2fx)", tenant, burnRate, d.cfg.BurnRate),
		})
	case burnRate < d.cfg.BurnRate/2:
		delete(d.burning, tenant)
	}
}
