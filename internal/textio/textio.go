// Package textio reads and writes point data sets in the whitespace-
// separated text format the paper loads from HDFS: one point per line,
// "x y" optionally followed by arbitrary non-spatial attribute text that
// is preserved as the tuple payload.
package textio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Read parses tuples from r, assigning sequential ids from idBase. Blank
// lines and lines starting with '#' are skipped. Any text after the two
// coordinates becomes the tuple payload.
func Read(r io.Reader, idBase int64) ([]tuple.Tuple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []tuple.Tuple
	id := idBase
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		xs, rest, _ := strings.Cut(line, " ")
		ys, payload, _ := strings.Cut(strings.TrimLeft(rest, " \t"), " ")
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad x coordinate %q: %w", lineNo, xs, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(ys), 64)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad y coordinate %q: %w", lineNo, ys, err)
		}
		t := tuple.Tuple{ID: id, Pt: geom.Point{X: x, Y: y}}
		if payload = strings.TrimSpace(payload); payload != "" {
			t.Payload = []byte(payload)
		}
		out = append(out, t)
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	return out, nil
}

// Write serialises tuples to w, one per line.
func Write(w io.Writer, ts []tuple.Tuple) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "%g %g", t.Pt.X, t.Pt.Y); err != nil {
			return fmt.Errorf("textio: %w", err)
		}
		if len(t.Payload) > 0 {
			if _, err := bw.WriteString(" " + string(t.Payload)); err != nil {
				return fmt.Errorf("textio: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("textio: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFile reads a data set from a file.
func ReadFile(path string, idBase int64) ([]tuple.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	defer f.Close()
	return Read(f, idBase)
}

// WriteFile writes a data set to a file, creating or truncating it.
func WriteFile(path string, ts []tuple.Tuple) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("textio: %w", err)
	}
	if err := Write(f, ts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
