package textio

import (
	"strings"
	"testing"
)

// FuzzRead must never panic and, for lines it accepts, re-serialising and
// re-reading must be a fixed point.
func FuzzRead(f *testing.F) {
	f.Add("1 2\n")
	f.Add("1.5 -2.5 some payload\n")
	f.Add("# comment\n\n3 4\n")
	f.Add("nan inf\n")
	f.Add("1e308 -1e308\n")
	f.Add("x y\n")
	f.Add("1\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		ts, err := Read(strings.NewReader(input), 0)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := Write(&sb, ts); err != nil {
			t.Fatalf("write after successful read failed: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()), 0)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v\nserialised: %q", err, sb.String())
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip length %d != %d", len(back), len(ts))
		}
		for i := range ts {
			// NaN never equals itself; compare bit-for-bit via formatting.
			if ts[i].Pt != back[i].Pt && !(ts[i].Pt.X != ts[i].Pt.X || ts[i].Pt.Y != ts[i].Pt.Y) {
				t.Fatalf("point %d changed: %v -> %v", i, ts[i].Pt, back[i].Pt)
			}
		}
	})
}
