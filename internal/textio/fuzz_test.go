package textio

import (
	"strings"
	"testing"
)

// FuzzRead must never panic and, for lines it accepts, re-serialising and
// re-reading must be a fixed point. The seed corpus covers the interesting
// input classes: malformed coordinates, huge payloads, empty and
// whitespace-only lines, comments, CRLF, and binary junk.
func FuzzRead(f *testing.F) {
	f.Add("1 2\n")
	f.Add("1.5 -2.5 some payload\n")
	f.Add("# comment\n\n3 4\n")
	f.Add("nan inf\n")
	f.Add("1e308 -1e308\n")
	f.Add("x y\n")
	f.Add("1\t2\n")
	// Malformed coordinates in assorted shapes.
	f.Add("1,5 2,5\n")  // locale decimal commas
	f.Add("0x10 5\n")   // hex floats need the 0x1p form
	f.Add("--1 2\n")    // double sign
	f.Add("1 2e\n")     // truncated exponent
	f.Add("3 \n")       // missing y entirely
	f.Add("∞ 2\n")      // non-ASCII junk
	f.Add("1 2\x003\n") // NUL inside the y token
	// Huge payloads and long lines.
	f.Add("0.5 0.5 " + strings.Repeat("payload-", 4096) + "\n")
	f.Add("1 1 " + strings.Repeat("x", 100_000) + "\n")
	// Empty-ish inputs: blank lines, whitespace-only lines, CRLF, no
	// trailing newline.
	f.Add("")
	f.Add("\n\n\n")
	f.Add("   \n\t\n")
	f.Add("1 2\r\n3 4\r\n")
	f.Add("5 6")
	f.Add("#only a comment")
	f.Fuzz(func(t *testing.T, input string) {
		const idBase = 7
		ts, err := Read(strings.NewReader(input), idBase)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for i, tp := range ts {
			if tp.ID != idBase+int64(i) {
				t.Fatalf("tuple %d has id %d, want sequential from %d", i, tp.ID, idBase)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, ts); err != nil {
			t.Fatalf("write after successful read failed: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()), idBase)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v\nserialised: %q", err, sb.String())
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip length %d != %d", len(back), len(ts))
		}
		for i := range ts {
			// NaN never equals itself; skip the comparison for NaN points.
			if ts[i].Pt != back[i].Pt && !(ts[i].Pt.X != ts[i].Pt.X || ts[i].Pt.Y != ts[i].Pt.Y) {
				t.Fatalf("point %d changed: %v -> %v", i, ts[i].Pt, back[i].Pt)
			}
			if string(ts[i].Payload) != string(back[i].Payload) {
				t.Fatalf("payload %d changed: %q -> %q", i, ts[i].Payload, back[i].Payload)
			}
		}
	})
}
