package textio

import (
	"strings"
	"testing"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
)

func TestReadGeoms(t *testing.T) {
	input := `
# a comment
POINT (1 2)
BOX (0 0, 4 3)
LINESTRING (0 0, 1 1, 2 0.5)
POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))
`
	objs, err := ReadGeoms(strings.NewReader(input), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("got %d objects", len(objs))
	}
	wantKinds := []extgeom.Kind{extgeom.KindPoint, extgeom.KindPolygon, extgeom.KindPolyline, extgeom.KindPolygon}
	for i, o := range objs {
		if o.ID != 100+int64(i) {
			t.Errorf("object %d id = %d", i, o.ID)
		}
		if o.Kind != wantKinds[i] {
			t.Errorf("object %d kind = %v, want %v", i, o.Kind, wantKinds[i])
		}
	}
	if b := objs[1].Bounds(); b != (geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 3}) {
		t.Errorf("BOX bounds = %v", b)
	}
	if len(objs[3].Verts) != 4 {
		t.Errorf("polygon stored %d verts, want 4 (ring unclosed in memory)", len(objs[3].Verts))
	}
}

func TestReadGeomsRejects(t *testing.T) {
	bad := []string{
		"POINT (1)",
		"POINT (1 2 3)",
		"POINT (nan 2)",
		"POINT (1 inf)",
		"POINT (1 -Inf)",
		"BOX (0 0, 0 5)", // zero-width
		"LINESTRING (1 1)",
		"POLYGON ((0 0, 1 0, 1 1))",        // unclosed ring
		"POLYGON ((0 0, 1 0, 0 0))",        // closed but only 2 distinct
		"POLYGON ((0 0, 1 0, 1 1, 0 0)",    // truncated paren
		"POLYGON (0 0, 1 0, 1 1, 0 0)",     // missing ring parens
		"POLYGON (((0 0, 1 0, 1 1, 0 0)))", // too many parens
		"CIRCLE (0 0, 5)",                  // unknown tag
		"LINESTRING (0 0, 1 1) trailing",   // junk after the list
		"LINESTRING (0 0, 1,1)",            // comma coordinate
		"LINESTRING (0 0, 1 1e)",           // truncated exponent
		"POINT 1 2",                        // no parens at all
		"POLYGON ((0 0, 1 0, 1 1, (0 0)))", // nested paren inside list
		"POLYGON ((1 1, 1 1, 1 1, 1 1))",   // fully degenerate ring
	}
	for _, line := range bad {
		if _, err := ReadGeoms(strings.NewReader(line+"\n"), 0); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestWriteGeomsRoundTrip(t *testing.T) {
	objs := []extgeom.Object{
		extgeom.NewPoint(0, geom.Point{X: 1.5, Y: -2.25}),
		extgeom.NewPolyline(1, []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 1}, {X: 5, Y: -1}}),
		extgeom.NewPolygon(2, []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}}),
	}
	var sb strings.Builder
	if err := WriteGeoms(&sb, objs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGeoms(strings.NewReader(sb.String()), 0)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, sb.String())
	}
	if len(back) != len(objs) {
		t.Fatalf("round trip length %d != %d", len(back), len(objs))
	}
	for i := range objs {
		if back[i].Kind != objs[i].Kind || len(back[i].Verts) != len(objs[i].Verts) {
			t.Fatalf("object %d changed: %+v -> %+v", i, objs[i], back[i])
		}
		for j := range objs[i].Verts {
			if back[i].Verts[j] != objs[i].Verts[j] {
				t.Fatalf("object %d vertex %d changed", i, j)
			}
		}
	}
}

// FuzzReadGeoms must never panic; accepted input must survive a
// serialise → re-read fixed point. The seed corpus covers the parser's
// sore spots: truncated coordinate lists, NaN/Inf, unclosed rings,
// unbalanced parens, binary junk.
func FuzzReadGeoms(f *testing.F) {
	f.Add("POINT (1 2)\n")
	f.Add("BOX (0 0, 4 3)\n")
	f.Add("LINESTRING (0 0, 1 1, 2 0.5)\n")
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))\n")
	f.Add("# comment\n\nPOINT (3 4)\n")
	// Truncations of a valid polygon at every structural boundary.
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0)\n")
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4,\n")
	f.Add("POLYGON ((0 0, 4\n")
	f.Add("POLYGON ((\n")
	f.Add("POLYGON\n")
	// Non-finite and malformed coordinates.
	f.Add("POINT (nan nan)\n")
	f.Add("POINT (inf -inf)\n")
	f.Add("POINT (1e309 0)\n")
	f.Add("LINESTRING (0 0, 1 2e)\n")
	f.Add("LINESTRING (0 0, 0x10 1)\n")
	f.Add("POINT (∞ 2)\n")
	// Unclosed / degenerate rings.
	f.Add("POLYGON ((0 0, 1 0, 1 1))\n")
	f.Add("POLYGON ((1 1, 1 1, 1 1, 1 1))\n")
	// Paren abuse.
	f.Add("POLYGON (((0 0, 1 0, 1 1, 0 0)))\n")
	f.Add("POINT ((1 2))\n")
	f.Add("POINT )1 2(\n")
	// Case, whitespace, CRLF, NULs.
	f.Add("point (1 2)\r\nbox (0 0, 1 1)\r\n")
	f.Add("  POINT   (  1   2  )  \n")
	f.Add("POINT (1 2\x00)\n")
	f.Add("LINESTRING (" + strings.Repeat("1 1, ", 2048) + "1 1)\n")
	f.Fuzz(func(t *testing.T, input string) {
		objs, err := ReadGeoms(strings.NewReader(input), 3)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for i := range objs {
			if objs[i].ID != 3+int64(i) {
				t.Fatalf("object %d has id %d, want sequential from 3", i, objs[i].ID)
			}
			if err := objs[i].Validate(); err != nil {
				t.Fatalf("accepted object %d fails validation: %v", i, err)
			}
		}
		var sb strings.Builder
		if err := WriteGeoms(&sb, objs); err != nil {
			t.Fatalf("write after successful read failed: %v", err)
		}
		back, err := ReadGeoms(strings.NewReader(sb.String()), 3)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v\nserialised: %q", err, sb.String())
		}
		if len(back) != len(objs) {
			t.Fatalf("round trip length %d != %d", len(back), len(objs))
		}
		for i := range objs {
			if back[i].Kind != objs[i].Kind || len(back[i].Verts) != len(objs[i].Verts) {
				t.Fatalf("object %d changed shape across round trip", i)
			}
		}
	})
}
