package textio

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func TestReadBasic(t *testing.T) {
	in := "1.5 2.5\n-3 4.25\n"
	ts, err := Read(strings.NewReader(in), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0].ID != 100 || ts[0].Pt != (geom.Point{X: 1.5, Y: 2.5}) {
		t.Fatalf("first tuple %+v", ts[0])
	}
	if ts[1].ID != 101 || ts[1].Pt != (geom.Point{X: -3, Y: 4.25}) {
		t.Fatalf("second tuple %+v", ts[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 2\n   \n# more\n3 4\n"
	ts, err := Read(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("len = %d, want 2", len(ts))
	}
}

func TestReadPayload(t *testing.T) {
	in := "1 2 Central Park, NYC\n"
	ts, err := Read(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(ts[0].Payload) != "Central Park, NYC" {
		t.Fatalf("payload = %q", ts[0].Payload)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"abc 2\n", "1 xyz\n", "1\n"} {
		if _, err := Read(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.txt")
	in := []tuple.Tuple{
		{ID: 0, Pt: geom.Point{X: 1.25, Y: -7}},
		{ID: 1, Pt: geom.Point{X: 0.001, Y: 99.5}, Payload: []byte("tag=water")},
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip len %d", len(out))
	}
	for i := range in {
		if out[i].Pt != in[i].Pt {
			t.Fatalf("tuple %d point %v != %v", i, out[i].Pt, in[i].Pt)
		}
		if string(out[i].Payload) != string(in[i].Payload) {
			t.Fatalf("tuple %d payload %q != %q", i, out[i].Payload, in[i].Payload)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.txt", 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestTabSeparated(t *testing.T) {
	// A tab between coordinates is tolerated via TrimLeft.
	ts, err := Read(strings.NewReader("1 \t2\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Pt != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("tuple %+v", ts[0])
	}
}

// failWriter errors after n bytes, driving Write's error paths.
type failWriter struct{ remaining int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errFull
	}
	n := len(p)
	if n > f.remaining {
		n = f.remaining
	}
	f.remaining -= n
	if n < len(p) {
		return n, errFull
	}
	return n, nil
}

var errFull = fmt.Errorf("disk full")

func TestWriteErrors(t *testing.T) {
	ts := []tuple.Tuple{
		{ID: 0, Pt: geom.Point{X: 1, Y: 2}, Payload: []byte("attributes here")},
		{ID: 1, Pt: geom.Point{X: 3, Y: 4}, Payload: []byte("more attributes")},
	}
	// Different cut points exercise the coordinate, payload and newline
	// write failures (bufio defers errors until the buffer flushes, so
	// any cut must surface by Flush at the latest).
	for _, budget := range []int{0, 3, 9, 17} {
		if err := Write(&failWriter{remaining: budget}, ts); err == nil {
			t.Errorf("budget %d: expected write error", budget)
		}
	}
	// A large enough budget succeeds.
	if err := Write(&failWriter{remaining: 1 << 16}, ts); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestWriteFileErrors(t *testing.T) {
	// Unwritable path.
	if err := WriteFile("/nonexistent-dir/sub/file.txt", nil); err == nil {
		t.Fatal("expected create error")
	}
	// Write into a directory path.
	dir := t.TempDir()
	if err := WriteFile(dir, []tuple.Tuple{{}}); err == nil {
		t.Fatal("expected error writing to a directory")
	}
}
