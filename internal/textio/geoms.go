package textio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
)

// Geometry text format, one object per line, WKT-flavoured:
//
//	POINT (x y)
//	BOX (x1 y1, x2 y2)            — shorthand, parsed into a 4-vertex polygon
//	LINESTRING (x1 y1, x2 y2, …)  — at least 2 vertices
//	POLYGON ((x1 y1, …, x1 y1))   — single ring, explicitly closed
//
// Blank lines and '#' comments are skipped. Coordinates must be finite:
// NaN and ±Inf are rejected — they would poison every MBR and sweep
// comparison downstream. Ids are assigned sequentially from idBase.

// ReadGeoms parses geometry objects from r.
func ReadGeoms(r io.Reader, idBase int64) ([]extgeom.Object, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []extgeom.Object
	id := idBase
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		o, err := ParseGeom(line, id)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
		}
		out = append(out, o)
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	return out, nil
}

// ParseGeom parses a single geometry line.
func ParseGeom(line string, id int64) (extgeom.Object, error) {
	tag, rest, ok := cutTag(line)
	if !ok {
		return extgeom.Object{}, fmt.Errorf("no geometry tag in %q", clip(line))
	}
	switch tag {
	case "POINT":
		pts, err := parseCoordList(rest, 0)
		if err != nil {
			return extgeom.Object{}, err
		}
		if len(pts) != 1 {
			return extgeom.Object{}, fmt.Errorf("POINT needs exactly one coordinate pair, got %d", len(pts))
		}
		return extgeom.NewPoint(id, pts[0]), nil
	case "BOX":
		pts, err := parseCoordList(rest, 0)
		if err != nil {
			return extgeom.Object{}, err
		}
		if len(pts) != 2 {
			return extgeom.Object{}, fmt.Errorf("BOX needs exactly two corner pairs, got %d", len(pts))
		}
		lo := geom.Point{X: math.Min(pts[0].X, pts[1].X), Y: math.Min(pts[0].Y, pts[1].Y)}
		hi := geom.Point{X: math.Max(pts[0].X, pts[1].X), Y: math.Max(pts[0].Y, pts[1].Y)}
		if lo.X == hi.X || lo.Y == hi.Y {
			return extgeom.Object{}, fmt.Errorf("BOX is degenerate: corners %v and %v", pts[0], pts[1])
		}
		return extgeom.NewPolygon(id, []geom.Point{
			lo, {X: hi.X, Y: lo.Y}, hi, {X: lo.X, Y: hi.Y},
		}), nil
	case "LINESTRING":
		pts, err := parseCoordList(rest, 0)
		if err != nil {
			return extgeom.Object{}, err
		}
		if len(pts) < 2 {
			return extgeom.Object{}, fmt.Errorf("LINESTRING needs at least 2 vertices, got %d", len(pts))
		}
		return extgeom.NewPolyline(id, pts), nil
	case "POLYGON":
		pts, err := parseCoordList(rest, 1)
		if err != nil {
			return extgeom.Object{}, err
		}
		if len(pts) < 4 {
			return extgeom.Object{}, fmt.Errorf("POLYGON ring needs at least 4 vertices (closed), got %d", len(pts))
		}
		if pts[0] != pts[len(pts)-1] {
			return extgeom.Object{}, fmt.Errorf("POLYGON ring is not closed: first %v, last %v", pts[0], pts[len(pts)-1])
		}
		if distinctPoints(pts[:len(pts)-1]) < 3 {
			return extgeom.Object{}, fmt.Errorf("POLYGON ring is degenerate: fewer than 3 distinct vertices")
		}
		o := extgeom.NewPolygon(id, pts[:len(pts)-1])
		if err := o.Validate(); err != nil {
			return extgeom.Object{}, err
		}
		return o, nil
	default:
		return extgeom.Object{}, fmt.Errorf("unknown geometry tag %q", tag)
	}
}

// cutTag splits "TAG (rest" into the upper-cased tag and the
// parenthesised remainder.
func cutTag(line string) (tag, rest string, ok bool) {
	i := strings.IndexByte(line, '(')
	if i < 0 {
		return "", "", false
	}
	return strings.ToUpper(strings.TrimSpace(line[:i])), line[i:], true
}

// parseCoordList parses "(x y, x y, …)" — or, at depth 1, the single
// extra paren level of "((…))" — into points, enforcing finiteness and
// balanced parentheses with nothing trailing.
func parseCoordList(s string, depth int) ([]geom.Point, error) {
	s = strings.TrimSpace(s)
	for d := 0; d <= depth; d++ {
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unbalanced parentheses in %q", clip(s))
		}
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	if strings.ContainsAny(s, "()") {
		return nil, fmt.Errorf("unexpected parenthesis inside coordinate list %q", clip(s))
	}
	parts := strings.Split(s, ",")
	pts := make([]geom.Point, 0, len(parts))
	for _, part := range parts {
		fs := strings.Fields(part)
		if len(fs) != 2 {
			return nil, fmt.Errorf("coordinate pair %q is not two numbers", clip(strings.TrimSpace(part)))
		}
		x, err := parseFinite(fs[0])
		if err != nil {
			return nil, err
		}
		y, err := parseFinite(fs[1])
		if err != nil {
			return nil, err
		}
		pts = append(pts, geom.Point{X: x, Y: y})
	}
	return pts, nil
}

// distinctPoints counts the distinct vertices in pts — a closed ring
// collapsing to fewer than 3 has no interior and breaks containment.
func distinctPoints(pts []geom.Point) int {
	seen := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		seen[p] = struct{}{}
	}
	return len(seen)
}

func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad coordinate %q: %w", clip(s), err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite coordinate %q", clip(s))
	}
	return v, nil
}

// clip bounds error-message payloads so hostile input cannot flood logs.
func clip(s string) string {
	if len(s) > 64 {
		return s[:64] + "…"
	}
	return s
}

// WriteGeoms serialises objects to w, one per line, in the format
// ReadGeoms parses (polygons are written with the ring explicitly
// closed).
func WriteGeoms(w io.Writer, objs []extgeom.Object) error {
	bw := bufio.NewWriter(w)
	for i := range objs {
		if _, err := bw.WriteString(FormatGeom(&objs[i]) + "\n"); err != nil {
			return fmt.Errorf("textio: %w", err)
		}
	}
	return bw.Flush()
}

// FormatGeom renders one object as a geometry text line.
func FormatGeom(o *extgeom.Object) string {
	var b strings.Builder
	writePair := func(p geom.Point) {
		b.WriteString(strconv.FormatFloat(p.X, 'g', -1, 64))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(p.Y, 'g', -1, 64))
	}
	switch o.Kind {
	case extgeom.KindPoint:
		b.WriteString("POINT (")
		writePair(o.Verts[0])
		b.WriteString(")")
	case extgeom.KindPolyline:
		b.WriteString("LINESTRING (")
		for i, v := range o.Verts {
			if i > 0 {
				b.WriteString(", ")
			}
			writePair(v)
		}
		b.WriteString(")")
	case extgeom.KindPolygon:
		b.WriteString("POLYGON ((")
		for i, v := range o.Verts {
			if i > 0 {
				b.WriteString(", ")
			}
			writePair(v)
		}
		b.WriteString(", ")
		writePair(o.Verts[0]) // close the ring on the wire
		b.WriteString("))")
	}
	return b.String()
}

// ReadGeomsFile reads a geometry data set from a file.
func ReadGeomsFile(path string, idBase int64) ([]extgeom.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	defer f.Close()
	return ReadGeoms(f, idBase)
}

// WriteGeomsFile writes a geometry data set to a file.
func WriteGeomsFile(path string, objs []extgeom.Object) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("textio: %w", err)
	}
	if err := WriteGeoms(f, objs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
