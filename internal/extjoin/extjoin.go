// Package extjoin extends the ε-distance join to spatial objects with
// extent (polylines and simple polygons) — the paper's first future-work
// item — while reusing the adaptive-replication machinery unchanged.
//
// Construction. Every object is represented by its MBR centre. If
// maxHalfDiag is the largest half-diagonal of any object's MBR across
// both inputs, then d(a, b) <= ε implies
//
//	d(center_a, center_b) <= ε + halfDiag_a + halfDiag_b <= ε + 2·maxHalfDiag =: εe.
//
// The centres are therefore joined with the ordinary adaptive (or
// universal) assignment at the inflated threshold εe — which is correct
// and duplicate-free for every centre pair within εe — and each candidate
// cell refines with the exact object distance at the original ε. Every
// true result pair has centre distance <= εe, so it is examined in
// exactly one cell: the extended join inherits both correctness and the
// duplicate-free property. Centre pairs farther than εe can never be true
// results, so discarding them in the filter step is safe.
//
// The price of extent is an inflated grid (cell side 2εe): the fatter the
// objects relative to ε, the more replication — quantified by the
// xobjects extension experiment.
package extjoin

import (
	"fmt"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Strategy selects how centres are assigned to cells.
type Strategy uint8

const (
	// Adaptive uses agreement-based replication (LPiB policy).
	Adaptive Strategy = iota
	// UniversalR replicates every R centre, PBSM-style.
	UniversalR
	// UniversalS replicates every S centre.
	UniversalS
)

// String names the strategy.
func (s Strategy) String() string {
	return [...]string{"adaptive", "UNI(R)", "UNI(S)"}[s]
}

// Config parameterises an extended-object join.
type Config struct {
	Eps            float64           // object distance threshold (required, > 0)
	Strategy       Strategy          // Adaptive (default), UniversalR, UniversalS
	Policy         agreements.Policy // agreement policy for Adaptive; default LPiB
	SampleFraction float64           // default 0.03
	Seed           int64
	Workers        int
	Partitions     int
	Collect        bool
	Bounds         *geom.Rect // centre-space MBR; computed when nil
	NetBandwidth   float64
}

// Result is the outcome of an extended join.
type Result struct {
	dpe.Metrics
	Pairs        []tuple.Pair
	EffectiveEps float64 // the inflated centre threshold εe
	MaxHalfDiag  float64
}

// Join computes all pairs (r, s) of objects with d(r, s) <= ε.
func Join(rs, ss []extgeom.Object, cfg Config) (*Result, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("extjoin: Eps must be positive, got %v", cfg.Eps)
	}
	for i := range rs {
		if err := rs[i].Validate(); err != nil {
			return nil, fmt.Errorf("extjoin: R[%d]: %w", i, err)
		}
	}
	for i := range ss {
		if err := ss[i].Validate(); err != nil {
			return nil, fmt.Errorf("extjoin: S[%d]: %w", i, err)
		}
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = sample.DefaultFraction
	}
	workers, partitions := core.Parallelism(cfg.Workers, cfg.Partitions)

	// Centre representation + exact-geometry lookup tables.
	start := time.Now()
	maxHD := 0.0
	for i := range rs {
		if hd := rs[i].HalfDiag(); hd > maxHD {
			maxHD = hd
		}
	}
	for i := range ss {
		if hd := ss[i].HalfDiag(); hd > maxHD {
			maxHD = hd
		}
	}
	epsE := cfg.Eps + 2*maxHD
	centersR := centers(rs)
	centersS := centers(ss)
	lookupR := lookup(rs)
	lookupS := lookup(ss)
	prepTime := time.Since(start)

	bounds := core.DataBounds(cfg.Bounds, centersR, centersS)
	g := grid.New(bounds, epsE, 2)

	// Sample centre statistics and build the assignment.
	start = time.Now()
	st := grid.NewStats(g)
	st.AddAll(tuple.R, sample.Bernoulli(centersR, cfg.SampleFraction, cfg.Seed))
	st.AddAll(tuple.S, sample.Bernoulli(centersS, cfg.SampleFraction, cfg.Seed+1))
	sampleTime := time.Since(start)

	start = time.Now()
	var assignR, assignS dpe.Assign
	switch cfg.Strategy {
	case Adaptive:
		gr := agreements.Build(st, cfg.Policy)
		assign := func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Adaptive(gr, p, set, dst)
		}
		assignR, assignS = assign, assign
	case UniversalR, UniversalS:
		replR := cfg.Strategy == UniversalR
		assignR = func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, replR, dst)
		}
		assignS = func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, !replR, dst)
		}
	default:
		return nil, fmt.Errorf("extjoin: unknown strategy %d", cfg.Strategy)
	}
	buildTime := time.Since(start)

	out, err := dpe.Run(dpe.Spec{
		R: centersR, S: centersS,
		Eps:     epsE,
		AssignR: assignR, AssignS: assignS,
		Part:    dpe.HashPartitioner{N: partitions},
		Workers: workers,
		Kernel:  refineKernel(lookupR, lookupS, cfg.Eps),
		Collect: cfg.Collect,

		NetBandwidth: cfg.NetBandwidth,
	})
	if err != nil {
		return nil, err
	}
	out.SampleTime = sampleTime
	out.BuildTime = prepTime + buildTime
	return &Result{
		Metrics:      out.Metrics,
		Pairs:        out.Pairs,
		EffectiveEps: epsE,
		MaxHalfDiag:  maxHD,
	}, nil
}

// refineKernel filters centre pairs with a plane sweep at εe and refines
// each candidate with the exact object distance at ε.
func refineKernel(lookupR, lookupS map[int64]*extgeom.Object, eps float64) dpe.Kernel {
	eps2 := eps * eps
	return func(_ int, rs, ss []tuple.Tuple, epsE float64, emit sweep.Emit) {
		sweep.PlaneSweep(rs, ss, epsE, func(r, s tuple.Tuple) {
			or := lookupR[r.ID]
			os := lookupS[s.ID]
			if extgeom.SqDist(or, os) <= eps2 {
				emit(r, s)
			}
		})
	}
}

// maxObjectWireBytes caps the modelled wire size of one object.
const vertexBytes = 16

// pad is a shared zero buffer backing the size-model payloads of centre
// tuples: the payload content is never read, only its length.
var pad = make([]byte, 1<<20)

// centers converts objects into centre tuples whose payload length models
// the object's serialized size (kind byte + vertices), so the engine's
// shuffle accounting reflects moving real geometries.
func centers(objs []extgeom.Object) []tuple.Tuple {
	out := make([]tuple.Tuple, len(objs))
	for i := range objs {
		sz := 1 + vertexBytes*(len(objs[i].Verts)-1)
		if sz < 0 {
			sz = 0
		}
		if sz > len(pad) {
			sz = len(pad)
		}
		out[i] = tuple.Tuple{
			ID:      objs[i].ID,
			Pt:      objs[i].Center(),
			Payload: pad[:sz],
		}
	}
	return out
}

func lookup(objs []extgeom.Object) map[int64]*extgeom.Object {
	m := make(map[int64]*extgeom.Object, len(objs))
	for i := range objs {
		m[objs[i].ID] = &objs[i]
	}
	return m
}
