package extjoin

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// randomObjects generates a clustered mix of points, polylines and
// polygons with extent up to maxExtent.
func randomObjects(rng *rand.Rand, n int, base int64, maxExtent float64) []extgeom.Object {
	centers := []geom.Point{{X: 15, Y: 15}, {X: 40, Y: 30}, {X: 25, Y: 45}}
	out := make([]extgeom.Object, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		anchor := geom.Point{X: c.X + rng.NormFloat64()*6, Y: c.Y + rng.NormFloat64()*6}
		id := base + int64(i)
		switch rng.Intn(3) {
		case 0:
			out[i] = extgeom.NewPoint(id, anchor)
		case 1:
			nv := 2 + rng.Intn(4)
			verts := make([]geom.Point, nv)
			for v := range verts {
				verts[v] = geom.Point{
					X: anchor.X + rng.Float64()*maxExtent,
					Y: anchor.Y + rng.Float64()*maxExtent,
				}
			}
			out[i] = extgeom.NewPolyline(id, verts)
		default:
			// A small convex-ish quad.
			w := rng.Float64() * maxExtent
			h := rng.Float64() * maxExtent
			out[i] = extgeom.NewPolygon(id, []geom.Point{
				anchor,
				{X: anchor.X + w, Y: anchor.Y},
				{X: anchor.X + w, Y: anchor.Y + h},
				{X: anchor.X, Y: anchor.Y + h},
			})
		}
	}
	return out
}

func oracleObjects(rs, ss []extgeom.Object, eps float64) []tuple.Pair {
	var out []tuple.Pair
	for i := range rs {
		for j := range ss {
			if extgeom.WithinDist(&rs[i], &ss[j], eps) {
				out = append(out, tuple.Pair{RID: rs[i].ID, SID: ss[j].ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []tuple.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func TestExtendedJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		rs := randomObjects(rng, 800, 0, 2)
		ss := randomObjects(rng, 800, 1_000_000, 2)
		eps := 0.5 + rng.Float64()
		want := oracleObjects(rs, ss, eps)

		for _, strat := range []Strategy{Adaptive, UniversalR, UniversalS} {
			res, err := Join(rs, ss, Config{
				Eps: eps, Strategy: strat, Workers: 4, Collect: true, Seed: int64(trial),
			})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			got := append([]tuple.Pair(nil), res.Pairs...)
			sortPairs(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d %v: got %d pairs, want %d (eps=%v, epsE=%v)",
					trial, strat, len(got), len(want), eps, res.EffectiveEps)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v: pair %d: %v vs %v", trial, strat, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEffectiveEpsInflation(t *testing.T) {
	rs := []extgeom.Object{extgeom.NewPolyline(1, []geom.Point{{X: 0, Y: 0}, {X: 6, Y: 8}})} // half diag 5
	ss := []extgeom.Object{extgeom.NewPoint(2, geom.Point{X: 20, Y: 20})}
	res, err := Join(rs, ss, Config{Eps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxHalfDiag != 5 {
		t.Fatalf("max half diag = %v, want 5", res.MaxHalfDiag)
	}
	if res.EffectiveEps != 11 {
		t.Fatalf("effective eps = %v, want 1 + 2*5 = 11", res.EffectiveEps)
	}
}

func TestFatObjectsNearThreshold(t *testing.T) {
	// Two long polylines whose closest approach is exactly at eps, with
	// centres far apart: only the inflated threshold finds them.
	rs := []extgeom.Object{extgeom.NewPolyline(1, []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 30}})}
	ss := []extgeom.Object{extgeom.NewPolyline(2, []geom.Point{{X: 2, Y: 30}, {X: 2, Y: 60}})}
	// Closest points: (0,30) and (2,30): distance 2.
	res, err := Join(rs, ss, Config{Eps: 2, Workers: 1, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != 1 {
		t.Fatalf("results = %d, want 1", res.Results)
	}
	res, err = Join(rs, ss, Config{Eps: 1.9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != 0 {
		t.Fatalf("results below threshold = %d, want 0", res.Results)
	}
}

func TestAdaptiveExtendedReplicatesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Skew the two sets into different regions.
	rs := make([]extgeom.Object, 0, 4000)
	ss := make([]extgeom.Object, 0, 4000)
	for i := 0; i < 4000; i++ {
		a := geom.Point{X: 10 + rng.NormFloat64()*5, Y: 25 + rng.NormFloat64()*12}
		rs = append(rs, extgeom.NewPolyline(int64(i), []geom.Point{a, {X: a.X + 0.3, Y: a.Y + 0.3}}))
		b := geom.Point{X: 40 + rng.NormFloat64()*5, Y: 25 + rng.NormFloat64()*12}
		ss = append(ss, extgeom.NewPolyline(int64(i+1_000_000), []geom.Point{b, {X: b.X + 0.3, Y: b.Y + 0.3}}))
	}
	cfgBase := Config{Eps: 0.5, Workers: 4, SampleFraction: 0.3}
	cfgA := cfgBase
	cfgA.Strategy = Adaptive
	adaptive, err := Join(rs, ss, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgR := cfgBase
	cfgR.Strategy = UniversalR
	uniR, err := Join(rs, ss, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Replicated() >= uniR.Replicated() {
		t.Fatalf("adaptive replicated %d >= universal %d", adaptive.Replicated(), uniR.Replicated())
	}
	if adaptive.Results != uniR.Results || adaptive.Checksum != uniR.Checksum {
		t.Fatalf("strategies disagree: %d vs %d", adaptive.Results, uniR.Results)
	}
}

func TestValidationErrors(t *testing.T) {
	good := []extgeom.Object{extgeom.NewPoint(1, geom.Point{})}
	if _, err := Join(good, good, Config{Eps: 0}); err == nil {
		t.Error("eps=0 must fail")
	}
	bad := []extgeom.Object{{Kind: extgeom.KindPolygon, Verts: make([]geom.Point, 2)}}
	if _, err := Join(bad, good, Config{Eps: 1}); err == nil {
		t.Error("invalid R object must fail")
	}
	if _, err := Join(good, bad, Config{Eps: 1}); err == nil {
		t.Error("invalid S object must fail")
	}
	if _, err := Join(nil, nil, Config{Eps: 1}); err != nil {
		t.Errorf("empty join should succeed: %v", err)
	}
}

func TestObjectBytesAccounted(t *testing.T) {
	// A 5-vertex polyline must shuffle more bytes than a point.
	pt := []extgeom.Object{extgeom.NewPoint(1, geom.Point{X: 5, Y: 5})}
	line := []extgeom.Object{extgeom.NewPolyline(1, []geom.Point{
		{X: 5, Y: 5}, {X: 5.1, Y: 5}, {X: 5.2, Y: 5}, {X: 5.3, Y: 5}, {X: 5.4, Y: 5},
	})}
	other := []extgeom.Object{extgeom.NewPoint(2, geom.Point{X: 6, Y: 6})}
	small, err := Join(pt, other, Config{Eps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Join(line, other, Config{Eps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.ShuffledBytes <= small.ShuffledBytes {
		t.Fatalf("polyline shuffled %d <= point %d", big.ShuffledBytes, small.ShuffledBytes)
	}
}

func TestStrategyString(t *testing.T) {
	if Adaptive.String() != "adaptive" || UniversalR.String() != "UNI(R)" || UniversalS.String() != "UNI(S)" {
		t.Fatal("strategy names broken")
	}
}
