package quadtree

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func sampleTuples(rng *rand.Rand, n int, bounds geom.Rect) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: int64(i),
			Pt: geom.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			},
		}
	}
	return out
}

func TestEmptySampleSingleLeaf(t *testing.T) {
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	p := Build(nil, b, 100, 0)
	if p.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1", p.NumLeaves())
	}
	if p.LeafRect(0) != b {
		t.Fatalf("leaf rect = %+v", p.LeafRect(0))
	}
}

func TestSplitsUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	ts := sampleTuples(rng, 1000, b)
	p := Build(ts, b, 50, 0)
	if p.NumLeaves() < 4 {
		t.Fatalf("1000 points with capacity 50 should split: %d leaves", p.NumLeaves())
	}
}

func TestLeavesTileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := geom.Rect{MinX: -5, MinY: 3, MaxX: 20, MaxY: 17}
	ts := sampleTuples(rng, 2000, b)
	p := Build(ts, b, 20, 0)

	// Total leaf area equals the bounds area (tiling, no overlap beyond
	// shared borders).
	var area float64
	for i := 0; i < p.NumLeaves(); i++ {
		area += p.LeafRect(i).Area()
	}
	if diff := area - b.Area(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("leaf areas sum to %v, bounds area %v", area, b.Area())
	}
}

func TestLocateConsistentWithLeafRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 50}
	ts := sampleTuples(rng, 3000, b)
	p := Build(ts, b, 25, 0)
	for i := 0; i < 5000; i++ {
		pt := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 50}
		id := p.Locate(pt)
		if !p.LeafRect(id).Contains(pt) {
			t.Fatalf("point %v located in leaf %d %+v that does not contain it", pt, id, p.LeafRect(id))
		}
	}
}

func TestLocateClampsOutside(t *testing.T) {
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	p := Build(nil, b, 1, 0)
	for _, pt := range []geom.Point{{X: -5, Y: -5}, {X: 100, Y: 3}, {X: 5, Y: 99}} {
		id := p.Locate(pt)
		if id < 0 || id >= p.NumLeaves() {
			t.Fatalf("out-of-bounds point %v located in invalid leaf %d", pt, id)
		}
	}
}

func TestCircleLeavesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	ts := sampleTuples(rng, 4000, b)
	p := Build(ts, b, 30, 0)
	for q := 0; q < 2000; q++ {
		c := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		eps := rng.Float64() * 3
		got := map[int]bool{}
		for _, id := range p.CircleLeaves(c, eps, nil) {
			if got[id] {
				t.Fatalf("duplicate leaf %d", id)
			}
			got[id] = true
		}
		for id := 0; id < p.NumLeaves(); id++ {
			want := p.LeafRect(id).WithinMinDist(c, eps)
			if want != got[id] {
				t.Fatalf("query %d leaf %d: got %v, want %v", q, id, got[id], want)
			}
		}
	}
}

func TestMaxDepthBoundsLeafCount(t *testing.T) {
	// All points identical: capacity can never be met, depth must stop it.
	ts := make([]tuple.Tuple, 100)
	for i := range ts {
		ts[i] = tuple.Tuple{ID: int64(i), Pt: geom.Point{X: 5, Y: 5}}
	}
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	p := Build(ts, b, 1, 3)
	// Depth 3 allows at most 4^3 = 64 leaves.
	if p.NumLeaves() > 64 {
		t.Fatalf("depth 3 produced %d leaves", p.NumLeaves())
	}
}

func TestDenseRegionsGetFinerLeaves(t *testing.T) {
	// Clustered sample: leaves near the cluster must be smaller than
	// leaves far away.
	rng := rand.New(rand.NewSource(5))
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	var ts []tuple.Tuple
	for i := 0; i < 2000; i++ {
		ts = append(ts, tuple.Tuple{ID: int64(i), Pt: geom.Point{
			X: 10 + rng.NormFloat64(),
			Y: 10 + rng.NormFloat64(),
		}})
	}
	p := Build(ts, b, 50, 0)
	dense := p.LeafRect(p.Locate(geom.Point{X: 10, Y: 10}))
	sparse := p.LeafRect(p.Locate(geom.Point{X: 90, Y: 90}))
	if dense.Area() >= sparse.Area() {
		t.Fatalf("dense leaf area %v >= sparse leaf area %v", dense.Area(), sparse.Area())
	}
}
