// Package quadtree implements the sample-built point-quadtree space
// partitioner used by the Sedona-style baseline: leaves are created by
// recursively splitting any region holding more than a capacity of sample
// points, so dense areas get fine partitions and sparse areas coarse ones.
// The resulting leaves tile the data space and act as join partitions.
package quadtree

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// DefaultMaxDepth bounds recursion; 4^12 potential leaves far exceed any
// realistic partition count.
const DefaultMaxDepth = 12

// Partitioner is an immutable quadtree over a bounded region whose leaves
// are numbered 0..NumLeaves-1.
type Partitioner struct {
	root   *node
	leaves []*node
	bounds geom.Rect
}

type node struct {
	rect     geom.Rect
	children *[4]*node // nil for leaves
	leafID   int       // valid for leaves
}

// Build constructs a partitioner over bounds from a sample: regions with
// more than capacity sample points split recursively (up to maxDepth,
// DefaultMaxDepth if non-positive). A non-positive capacity defaults to 1.
func Build(sampleTs []tuple.Tuple, bounds geom.Rect, capacity, maxDepth int) *Partitioner {
	if capacity <= 0 {
		capacity = 1
	}
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	pts := make([]geom.Point, len(sampleTs))
	for i, t := range sampleTs {
		pts[i] = t.Pt
	}
	p := &Partitioner{bounds: bounds}
	p.root = p.build(pts, bounds, capacity, maxDepth)
	return p
}

func (p *Partitioner) build(pts []geom.Point, rect geom.Rect, capacity, depth int) *node {
	if len(pts) <= capacity || depth <= 0 {
		n := &node{rect: rect, leafID: len(p.leaves)}
		p.leaves = append(p.leaves, n)
		return n
	}
	c := rect.Center()
	quads := [4]geom.Rect{
		{MinX: rect.MinX, MinY: rect.MinY, MaxX: c.X, MaxY: c.Y}, // SW
		{MinX: c.X, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: c.Y}, // SE
		{MinX: rect.MinX, MinY: c.Y, MaxX: c.X, MaxY: rect.MaxY}, // NW
		{MinX: c.X, MinY: c.Y, MaxX: rect.MaxX, MaxY: rect.MaxY}, // NE
	}
	var parts [4][]geom.Point
	for _, pt := range pts {
		parts[quadIndex(pt, c)] = append(parts[quadIndex(pt, c)], pt)
	}
	n := &node{rect: rect, children: new([4]*node)}
	for i := range quads {
		n.children[i] = p.build(parts[i], quads[i], capacity, depth-1)
	}
	return n
}

// quadIndex routes a point to a quadrant; points exactly on the split
// lines go east/north, matching Locate.
func quadIndex(pt geom.Point, c geom.Point) int {
	i := 0
	if pt.X >= c.X {
		i |= 1
	}
	if pt.Y >= c.Y {
		i |= 2
	}
	return i
}

// NumLeaves returns the number of partitions.
func (p *Partitioner) NumLeaves() int { return len(p.leaves) }

// Bounds returns the partitioned region.
func (p *Partitioner) Bounds() geom.Rect { return p.bounds }

// LeafRect returns the region of leaf id.
func (p *Partitioner) LeafRect(id int) geom.Rect { return p.leaves[id].rect }

// Locate returns the leaf containing pt; points outside the bounds are
// clamped onto the border first (the engine has no overflow partition).
func (p *Partitioner) Locate(pt geom.Point) int {
	pt = clamp(pt, p.bounds)
	n := p.root
	for n.children != nil {
		n = n.children[quadIndex(pt, n.rect.Center())]
	}
	return n.leafID
}

// CircleLeaves appends to dst the ids of every leaf whose region is within
// eps of center, and returns the extended slice.
func (p *Partitioner) CircleLeaves(center geom.Point, eps float64, dst []int) []int {
	eps2 := eps * eps
	var walk func(n *node)
	walk = func(n *node) {
		if n.rect.SqMinDist(center) > eps2 {
			return
		}
		if n.children == nil {
			dst = append(dst, n.leafID)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.root)
	return dst
}

// RectLeaves appends to dst the ids of every leaf whose region
// intersects r (borders inclusive), and returns the extended slice.
// Non-point joins use it to replicate an object's (expanded) MBR across
// the partitions it may produce results in.
func (p *Partitioner) RectLeaves(r geom.Rect, dst []int) []int {
	var walk func(n *node)
	walk = func(n *node) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.children == nil {
			dst = append(dst, n.leafID)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.root)
	return dst
}

func clamp(pt geom.Point, r geom.Rect) geom.Point {
	if pt.X < r.MinX {
		pt.X = r.MinX
	} else if pt.X > r.MaxX {
		pt.X = r.MaxX
	}
	if pt.Y < r.MinY {
		pt.Y = r.MinY
	} else if pt.Y > r.MaxY {
		pt.Y = r.MaxY
	}
	return pt
}
