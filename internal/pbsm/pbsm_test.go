package pbsm

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

func uniform(rng *rand.Rand, n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
		}
	}
	return out
}

func TestAllVariantsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	rs := uniform(rng, 4000, 0)
	ss := uniform(rng, 3000, 1_000_000)
	eps := 0.8
	var want sweep.Counter
	sweep.NestedLoop(rs, ss, eps, want.Emit)

	for _, v := range []Variant{UniR, UniS, EpsGrid} {
		res, err := Join(rs, ss, Config{Eps: eps, Variant: v, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Results != want.N || res.Checksum != want.Checksum {
			t.Fatalf("%v: results %d/%x, want %d/%x", v, res.Results, res.Checksum, want.N, want.Checksum)
		}
	}
}

func TestOnlyChosenSetReplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rs := uniform(rng, 2000, 0)
	ss := uniform(rng, 2000, 1_000_000)

	r, err := Join(rs, ss, Config{Eps: 1, Variant: UniR})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReplicatedR == 0 || r.ReplicatedS != 0 {
		t.Fatalf("UNI(R) replication R/S = %d/%d", r.ReplicatedR, r.ReplicatedS)
	}
	s, err := Join(rs, ss, Config{Eps: 1, Variant: UniS})
	if err != nil {
		t.Fatal(err)
	}
	if s.ReplicatedS == 0 || s.ReplicatedR != 0 {
		t.Fatalf("UNI(S) replication R/S = %d/%d", s.ReplicatedR, s.ReplicatedS)
	}
}

func TestEpsGridReplicatesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rs := uniform(rng, 5000, 0)
	ss := uniform(rng, 5000, 1_000_000)
	coarse, err := Join(rs, ss, Config{Eps: 1, Variant: UniR})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Join(rs, ss, Config{Eps: 1, Variant: EpsGrid})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Replicated() <= coarse.Replicated() {
		t.Fatalf("eps-grid replicated %d, UNI(R) %d — expected the ε-grid to replicate more",
			fine.Replicated(), coarse.Replicated())
	}
	if fine.Grid.Res != 1 || coarse.Grid.Res != 2 {
		t.Fatalf("grid resolutions = %v/%v, want 1/2", fine.Grid.Res, coarse.Grid.Res)
	}
}

func TestEpsGridPicksSmallerSet(t *testing.T) {
	c := Config{Variant: EpsGrid}
	if !c.replicatesR(100, 200) {
		t.Error("eps-grid must replicate R when it is smaller")
	}
	if c.replicatesR(200, 100) {
		t.Error("eps-grid must replicate S when it is smaller")
	}
	if !c.replicatesR(100, 100) {
		t.Error("tie should replicate R")
	}
}

func TestVariantString(t *testing.T) {
	if UniR.String() != "UNI(R)" || UniS.String() != "UNI(S)" || EpsGrid.String() != "eps-grid" {
		t.Fatal("variant names broken")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Join(nil, nil, Config{Eps: 0}); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := Join(nil, nil, Config{Eps: 1}); err != nil {
		t.Errorf("empty join should succeed: %v", err)
	}
}

func TestCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rs := uniform(rng, 300, 0)
	ss := uniform(rng, 300, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 2, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Pairs)) != res.Results {
		t.Fatalf("collected %d, counted %d", len(res.Pairs), res.Results)
	}
}

func TestCloneRefPointMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	rs := uniform(rng, 4000, 0)
	ss := uniform(rng, 4000, 1_000_000)
	eps := 0.9
	var want sweep.Counter
	sweep.NestedLoop(rs, ss, eps, want.Emit)

	res, err := Join(rs, ss, Config{Eps: eps, Variant: Clone, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != want.N || res.Checksum != want.Checksum {
		t.Fatalf("clone+refpoint: results %d/%x, want %d/%x", res.Results, res.Checksum, want.N, want.Checksum)
	}
	// Both sets replicate.
	if res.ReplicatedR == 0 || res.ReplicatedS == 0 {
		t.Fatalf("clone join must replicate both sets: %d/%d", res.ReplicatedR, res.ReplicatedS)
	}
	// And it must replicate (and shuffle) more than either single-set
	// universal variant.
	uniR, err := Join(rs, ss, Config{Eps: eps, Variant: UniR, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicated() <= uniR.Replicated() {
		t.Fatalf("clone replicated %d <= UNI(R) %d", res.Replicated(), uniR.Replicated())
	}
	if Clone.String() != "clone+refpoint" {
		t.Fatal("variant name broken")
	}
}
