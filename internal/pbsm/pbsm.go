// Package pbsm implements the baselines the paper compares against:
// Partition-Based Spatial-Merge join (Patel & DeWitt, SIGMOD '96) adapted
// to the data-parallel engine, in the three configurations of the
// evaluation:
//
//   - UNI(R): a 2ε×2ε grid where every R point is replicated to each cell
//     within ε (S points are assigned to their native cell only).
//   - UNI(S): the same with the roles swapped.
//   - EpsGrid ("ε-grid"): an ε×ε grid replicating the smaller input —
//     finer partitions, heavier replication (up to 8 target cells).
//
// All variants are correct and duplicate-free: with only one set
// replicated, every (r, s) pair is found exactly in the native cell of
// the non-replicated point.
package pbsm

import (
	"context"
	"fmt"
	"time"

	"spatialjoin/internal/core"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Variant selects the PBSM configuration.
type Variant uint8

const (
	// UniR replicates the R input on a 2ε grid.
	UniR Variant = iota
	// UniS replicates the S input on a 2ε grid.
	UniS
	// EpsGrid uses an ε×ε grid and replicates the smaller input.
	EpsGrid
	// Clone replicates BOTH inputs within ε (Patel & DeWitt's clone join)
	// and avoids duplicate results with the reference-point technique of
	// Dittrich & Seeger: a pair is reported only by the cell containing
	// the pair's midpoint. The midpoint is within ε/2 of both endpoints,
	// so both are guaranteed present in its cell — correct and
	// duplicate-free at the price of replicating both sets.
	Clone
)

// String names the variant as in the paper's charts.
func (v Variant) String() string {
	switch v {
	case UniR:
		return "UNI(R)"
	case UniS:
		return "UNI(S)"
	case EpsGrid:
		return "eps-grid"
	case Clone:
		return "clone+refpoint"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Config parameterises one PBSM execution.
type Config struct {
	Eps        float64    // join distance threshold (required, > 0)
	Variant    Variant    // UniR (default), UniS, or EpsGrid
	Workers    int        // simulated nodes; default GOMAXPROCS
	Partitions int        // reduce partitions; default 8 × workers
	Collect    bool       // materialise result pairs
	Bounds     *geom.Rect // data-space MBR; computed from the inputs when nil
	// NetBandwidth is the simulated per-link bandwidth in bytes/s (0: off).
	NetBandwidth float64
	// SelfFilter enables self-join mode: keep only pairs with r.ID < s.ID.
	SelfFilter bool
	// PoolSize caps the OS-level goroutine pool; default GOMAXPROCS.
	PoolSize int
	// Engine selects the execution backend (nil: in-process local engine).
	Engine dpe.Engine
	// Tracer records phase and task spans under TraceParent; nil
	// disables tracing at zero cost.
	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Result is the outcome of a PBSM join.
type Result struct {
	dpe.Metrics
	Pairs []tuple.Pair
	Grid  *grid.Grid
}

// Plan is a reusable PBSM execution plan: the grid plus the replicated,
// partition-bucketed tuples. Execute may be called repeatedly and
// concurrently.
type Plan struct {
	Grid *grid.Grid

	prep      *dpe.Prepared
	buildTime time.Duration
}

// BuildPlan constructs the grid, maps and shuffles both inputs, and
// returns the reusable plan without joining the partitions.
func BuildPlan(rs, ss []tuple.Tuple, cfg Config) (*Plan, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("pbsm: Eps must be positive, got %v", cfg.Eps)
	}
	workers, partitions := core.Parallelism(cfg.Workers, cfg.Partitions)
	bounds := core.DataBounds(cfg.Bounds, rs, ss)

	start := time.Now()
	res := cfg.Res()
	g := grid.New(bounds, cfg.Eps, res)
	replicateR := cfg.replicatesR(len(rs), len(ss))
	buildTime := time.Since(start)

	spec := dpe.Spec{
		R: rs, S: ss, Eps: cfg.Eps,
		AssignR: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, replicateR, dst)
		},
		AssignS: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, !replicateR, dst)
		},
		Part:    dpe.HashPartitioner{N: partitions},
		Workers: workers,
		Collect: cfg.Collect,

		NetBandwidth: cfg.NetBandwidth,
		SelfFilter:   cfg.SelfFilter,
		PoolSize:     cfg.PoolSize,
		Engine:       cfg.Engine,

		Tracer:      cfg.Tracer,
		TraceParent: cfg.TraceParent,
	}
	if cfg.Variant == Clone {
		both := func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		}
		spec.AssignR, spec.AssignS = both, both
		spec.Kernel = refPointKernel(g)
		// Remote workers rebuild the kernel from the grid geometry.
		spec.KernelDesc = dpe.KernelDesc{Kind: dpe.KernelRefPoint, Bounds: bounds, GridEps: cfg.Eps, GridRes: res}
	}
	prep, err := dpe.Prepare(spec)
	if err != nil {
		return nil, err
	}
	return &Plan{Grid: g, prep: prep, buildTime: buildTime}, nil
}

// Eps returns the distance threshold the plan was built for.
func (p *Plan) Eps() float64 { return p.prep.Eps() }

// FootprintBytes returns the wire size of the partitioned tuples.
func (p *Plan) FootprintBytes() int64 { return p.prep.FootprintBytes() }

// Replicated returns the replicated objects the plan serves per Execute.
func (p *Plan) Replicated() int64 { return p.prep.Replicated() }

// Execute runs the partition-level joins of the plan; e.Eps in
// (0, plan ε] re-sweeps with a smaller threshold (0 means the plan's ε).
func (p *Plan) Execute(e core.Exec) (*Result, error) {
	ctx := e.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out, err := p.prep.ExecuteContext(ctx, dpe.ExecOptions{
		Eps: e.Eps, Collect: e.Collect,
		Tracer: e.Tracer, TraceParent: e.TraceParent,
	})
	if err != nil {
		return nil, err
	}
	out.BuildTime = p.buildTime
	return &Result{Metrics: out.Metrics, Pairs: out.Pairs, Grid: p.Grid}, nil
}

// Join executes the ε-distance join with universal replication —
// BuildPlan followed by a single Execute.
func Join(rs, ss []tuple.Tuple, cfg Config) (*Result, error) {
	p, err := BuildPlan(rs, ss, cfg)
	if err != nil {
		return nil, err
	}
	return p.Execute(core.Exec{Collect: cfg.Collect})
}

// Res returns the grid resolution multiplier of the variant.
func (c Config) Res() float64 {
	if c.Variant == EpsGrid {
		return 1
	}
	return 2
}

// RefPointKernel exposes the reference-point kernel so execution
// backends (internal/cluster's workers) can rebuild it from the plan's
// wire kernel description.
func RefPointKernel(g *grid.Grid) dpe.Kernel { return refPointKernel(g) }

// refPointKernel wraps the plane sweep with the reference-point filter:
// a pair is emitted only by the cell containing its midpoint.
func refPointKernel(g *grid.Grid) dpe.Kernel {
	return func(cell int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
		sweep.PlaneSweep(rs, ss, eps, func(r, s tuple.Tuple) {
			mid := geom.Point{X: (r.Pt.X + s.Pt.X) / 2, Y: (r.Pt.Y + s.Pt.Y) / 2}
			mx, my := g.Locate(mid)
			if g.CellID(mx, my) == cell {
				emit(r, s)
			}
		})
	}
}

// replicatesR reports whether the R input is the replicated one.
func (c Config) replicatesR(nr, ns int) bool {
	switch c.Variant {
	case UniR:
		return true
	case UniS:
		return false
	default: // EpsGrid replicates the set with the fewest objects.
		return nr <= ns
	}
}
