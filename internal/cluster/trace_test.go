package cluster

import (
	"reflect"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/obs"
)

// TestTraceWireRoundTrip checks the v2 trace frames encode/decode
// losslessly, including typed attributes.
func TestTraceWireRoundTrip(t *testing.T) {
	tm := traceMsg{plan: 42, traceID: 7, parent: 3, idBase: 5 << 40}
	got, err := decodeTrace(tm.encode())
	if err != nil {
		t.Fatalf("decodeTrace: %v", err)
	}
	got.version = 0
	tm.version = 0
	if got != tm {
		t.Fatalf("trace round trip: got %+v, want %+v", got, tm)
	}

	bad := tm
	badBytes := bad.encode()
	badBytes[0] = protoVersion + 1
	if _, err := decodeTrace(badBytes); err == nil {
		t.Fatal("decodeTrace accepted a wrong-version frame")
	}

	sm := spansMsg{plan: 42, spans: []obs.Span{
		{ID: 5<<40 | 1, Parent: 3, Name: obs.SpanTask, Worker: "w1",
			Start: 1000, Done: 2000,
			Attrs: []obs.Attr{
				{Key: "partition", Int: 9},
				{Key: "kind", Str: "sweep", IsStr: true},
			}},
		{ID: 5<<40 | 2, Parent: 3, Name: obs.SpanTask, Worker: "w1", Start: 1500, Done: 1700},
	}}
	got2, err := decodeSpans(sm.encode())
	if err != nil {
		t.Fatalf("decodeSpans: %v", err)
	}
	if got2.plan != sm.plan || !reflect.DeepEqual(got2.spans, sm.spans) {
		t.Fatalf("spans round trip: got %+v, want %+v", got2, sm)
	}
}

// TestClusterTraceStitch runs a traced join on the cluster engine (two
// in-process workers speaking the full wire protocol) and checks the
// worker-side task spans stitch into the coordinator's single span tree
// with correct worker attribution and a usable skew report.
func TestClusterTraceStitch(t *testing.T) {
	h := startHarness(t, Config{},
		WorkerOptions{Name: "w1", Parallel: 2},
		WorkerOptions{Name: "w2", Parallel: 2},
	)

	rs := datagen.Uniform(datagen.World(), 3000, 21, 0)
	ss := datagen.GaussianClusters(datagen.World(), 3000, 8, 0.02, 0.08, 22, 1<<20)
	tr := obs.New()
	root := tr.Start(0, obs.SpanJoin)

	spec := uniRSpec(rs, ss, 0.4, false)
	spec.Engine = h.coord.Engine()
	spec.Tracer = tr
	spec.TraceParent = root.SpanID()
	res, err := dpe.Run(spec)
	if err != nil {
		t.Fatalf("traced cluster run: %v", err)
	}
	root.End()
	if res.Results == 0 {
		t.Fatal("traced cluster join produced no results")
	}

	workers := map[string]int{}
	seen := map[obs.SpanID]bool{}
	var tasks, execs int
	for _, sp := range tr.Spans() {
		if seen[sp.ID] {
			t.Errorf("duplicate span id %d in stitched trace", sp.ID)
		}
		seen[sp.ID] = true
		switch sp.Name {
		case obs.SpanTask:
			tasks++
			if sp.Worker == "" {
				t.Error("remote task span without worker attribution")
			}
			workers[sp.Worker]++
			if sp.Done == 0 {
				t.Errorf("task span %d never ended", sp.ID)
			}
		case obs.SpanExecute:
			execs++
		}
	}
	if execs != 1 {
		t.Fatalf("stitched trace has %d execute spans, want 1", execs)
	}
	if tasks == 0 {
		t.Fatal("no remote task spans were stitched in")
	}
	if workers["w1"] == 0 || workers["w2"] == 0 {
		t.Fatalf("task spans did not come from both worker processes: %v", workers)
	}

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != obs.SpanJoin {
		t.Fatalf("stitched trace is not a single join-rooted tree: %d roots", len(roots))
	}

	sk := tr.Skew()
	if sk.Tasks != tasks || sk.MaxTaskMicros <= 0 {
		t.Fatalf("skew report inconsistent with stitched tasks: %+v", sk)
	}
	if len(sk.TasksPerWorker) < 2 {
		t.Fatalf("skew report missing per-worker task counts: %+v", sk)
	}
}

// TestClusterUntracedFree checks a nil tracer adds no trace frames: the
// run completes and no spans exist anywhere.
func TestClusterUntracedFree(t *testing.T) {
	h := startHarness(t, Config{}, WorkerOptions{Name: "solo"})
	rs := datagen.Uniform(datagen.World(), 500, 31, 0)
	ss := datagen.Uniform(datagen.World(), 500, 32, 1<<20)
	spec := uniRSpec(rs, ss, 0.4, false)
	spec.Engine = h.coord.Engine()
	if _, err := dpe.Run(spec); err != nil {
		t.Fatalf("untraced cluster run: %v", err)
	}
}
