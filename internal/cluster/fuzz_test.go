package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// fuzzMaxFrame keeps the fuzzer from asking readFrame for gigabyte
// bodies; the production cap is exercised by its own seed below.
const fuzzMaxFrame = 1 << 20

// FuzzFrame feeds arbitrary bytes through the wire protocol's framing
// and every payload decoder. Decoders may reject input with errors but
// must never panic, over-allocate past the frame, or read out of
// bounds; any frame that parses must survive a re-frame round trip.
func FuzzFrame(f *testing.F) {
	// Truncated and degenerate frames.
	f.Add([]byte{})
	f.Add([]byte{0x01})                                          // partial length prefix
	f.Add([]byte{0x0a, 0x00, 0x00, 0x00, 0x01})                  // declares 10 bytes, carries 1
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})                        // zero-length frame (no type byte)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})                  // length far past the cap
	f.Add(binary.LittleEndian.AppendUint32(nil, fuzzMaxFrame+1)) // just past the cap

	// Well-formed frames of every type, built with the real encoders.
	hello := append([]byte(helloMagic), protoVersion)
	f.Add(appendFrame(msgHello, appendStr16(hello, "worker-1")))
	badHello := append([]byte("NOPE"), protoVersion)
	f.Add(appendFrame(msgHello, appendStr16(badHello, "worker-1")))
	f.Add(appendFrame(msgHeartbeat, nil))
	f.Add(appendFrame(msgPlan, planMsg{
		id: 7, eps: 0.5, selfFilter: true, collect: true,
		kernel: dpe.KernelDesc{
			Kind:   dpe.KernelRefPoint,
			Bounds: geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
		},
		broadcast: []byte("opaque plan bytes"),
	}.encode()))
	taskFrame, _, _ := encodeTask(taskHeader{plan: 7, part: 3, attempt: 1},
		[]dpe.Keyed{{Cell: 5, T: tuple.Tuple{ID: 1, Pt: geom.Point{X: 1, Y: 2}}}},
		[]dpe.Keyed{{Cell: 5, T: tuple.Tuple{ID: 2, Pt: geom.Point{X: 1.25, Y: 2}, Payload: []byte("p")}}},
		func(int) bool { return true })
	f.Add(taskFrame)
	f.Add(appendFrame(msgResult, resultMsg{
		taskHeader: taskHeader{plan: 7, part: 3, attempt: 1},
		results:    1, checksum: 42, cost: 9,
		pairs: []tuple.Pair{{RID: 1, SID: 2}},
	}.encode()))
	f.Add(appendFrame(msgTaskErr, taskErrMsg{
		taskHeader: taskHeader{plan: 7, part: 3}, msg: "boom",
	}.encode()))
	f.Add(appendFrame(msgCancel, cancelMsg{plan: 7, part: 3}.encode()))
	f.Add(appendFrame(msgPlanDone, encodePlanDone(7)))

	// Trace-context and span frames of the v2 protocol.
	traceFrame := traceMsg{plan: 7, traceID: 99, parent: 3, idBase: 1 << 40}.encode()
	f.Add(appendFrame(msgTrace, traceFrame))
	f.Add(appendFrame(msgTrace, traceFrame[:10])) // truncated mid-field
	wrongVersion := append([]byte(nil), traceFrame...)
	wrongVersion[0] = protoVersion + 1
	f.Add(appendFrame(msgTrace, wrongVersion))
	f.Add(appendFrame(msgSpans, spansMsg{plan: 7, spans: []obs.Span{
		{ID: 1<<40 | 1, Parent: 3, Name: obs.SpanTask, Worker: "w1",
			Start: 100, Done: 200,
			Attrs: []obs.Attr{{Key: "partition", Int: 3}, {Key: "kind", Str: "sweep", IsStr: true}}},
		{ID: 1<<40 | 1, Parent: 3, Name: obs.SpanTask, Worker: "w1", Start: 150, Done: 250}, // duplicate span id
	}}.encode()))
	lyingSpans := binary.LittleEndian.AppendUint64(nil, 7)
	lyingSpans = binary.LittleEndian.AppendUint32(lyingSpans, 1<<30) // a billion spans, no bytes
	f.Add(appendFrame(msgSpans, lyingSpans))

	// Columnar task frames of the v3 protocol.
	colsFrame, _, _ := encodeTaskCols(taskHeader{plan: 7, part: 3, attempt: 1},
		&colpipe.Slab{Ranks: []int32{2, 9}, Starts: []int32{0, 1, 3},
			Xs: []float64{1, 2, 3}, Ys: []float64{4, 5, 6}, IDs: []int64{7, 8, 9},
			WorkerRows: []int32{3}},
		&colpipe.Slab{Ranks: []int32{9}, Starts: []int32{0, 1},
			Xs: []float64{2}, Ys: []float64{5}, IDs: []int64{10},
			WorkerRows: []int32{1}},
		func(int) bool { return true })
	f.Add(colsFrame)
	f.Add(colsFrame[:len(colsFrame)-8]) // truncated mid-lane

	// Frames whose payloads lie about their contents.
	lyingTask := appendTaskHeader(nil, taskHeader{plan: 1})
	lyingTask = binary.LittleEndian.AppendUint32(lyingTask, 1<<30) // a billion records, no bytes
	f.Add(appendFrame(msgTask, lyingTask))
	lyingCols := appendTaskHeader(nil, taskHeader{plan: 1})
	lyingCols = binary.LittleEndian.AppendUint32(lyingCols, 1<<30) // a billion groups, no bytes
	f.Add(appendFrame(msgTaskCols, lyingCols))
	lyingResult := resultMsg{taskHeader: taskHeader{plan: 1}}.encode()
	binary.LittleEndian.PutUint32(lyingResult[len(lyingResult)-4:], 1<<30)
	f.Add(appendFrame(msgResult, lyingResult))

	// Two frames back to back: framing must resynchronise.
	f.Add(append(appendFrame(msgHeartbeat, nil), appendFrame(msgCancel, cancelMsg{plan: 1}.encode())...))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			typ, payload, err := readFrame(br, fuzzMaxFrame)
			if err != nil {
				return // rejected cleanly; nothing more to parse
			}
			switch typ {
			case msgHello:
				decodeHello(payload)
			case msgPlan:
				decodePlan(payload)
			case msgTask:
				decodeTask(payload)
			case msgTaskCols:
				decodeTaskCols(payload)
			case msgResult:
				decodeResult(payload)
			case msgTaskErr:
				decodeTaskErr(payload)
			case msgCancel:
				decodeCancel(payload)
			case msgPlanDone:
				decodePlanDone(payload)
			case msgTrace:
				decodeTrace(payload)
			case msgSpans:
				decodeSpans(payload)
			}
			// Any frame that framed must round-trip bit-identically.
			reframed := appendFrame(typ, payload)
			typ2, payload2, err2 := readFrame(bufio.NewReader(bytes.NewReader(reframed)), fuzzMaxFrame)
			if err2 != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
				t.Fatalf("round trip broke: typ %d->%d err=%v", typ, typ2, err2)
			}
		}
	})
}
