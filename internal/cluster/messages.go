// Typed encode/decode of the protocol's message payloads, shared by the
// coordinator and the worker.

package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// helloMsg is the worker → coordinator handshake.
type helloMsg struct {
	name string
}

func (m helloMsg) encode() []byte {
	b := append([]byte(nil), helloMagic...)
	b = append(b, protoVersion)
	return appendStr16(b, m.name)
}

func decodeHello(b []byte) (helloMsg, error) {
	r := newReader(b)
	if magic := r.take(4); string(magic) != helloMagic {
		return helloMsg{}, fmt.Errorf("cluster: bad hello magic %q", magic)
	}
	if v := r.u8(); v != protoVersion {
		return helloMsg{}, fmt.Errorf("cluster: worker speaks protocol v%d, coordinator v%d", v, protoVersion)
	}
	m := helloMsg{name: r.str16()}
	return m, r.err("hello")
}

// planMsg is the coordinator → worker broadcast of one execution's plan:
// the join parameters, the kernel description, and the opaque broadcast
// blob (encoded grid + graph of agreements + LPT placement).
type planMsg struct {
	id         uint64
	eps        float64
	selfFilter bool
	collect    bool
	kernel     dpe.KernelDesc
	broadcast  []byte
}

const (
	planFlagSelfFilter = 1 << 0
	planFlagCollect    = 1 << 1
)

func (m planMsg) encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.id)
	b = appendF64(b, m.eps)
	var flags byte
	if m.selfFilter {
		flags |= planFlagSelfFilter
	}
	if m.collect {
		flags |= planFlagCollect
	}
	b = append(b, flags, byte(m.kernel.Kind))
	if m.kernel.Kind == dpe.KernelRefPoint {
		for _, f := range []float64{
			m.kernel.Bounds.MinX, m.kernel.Bounds.MinY,
			m.kernel.Bounds.MaxX, m.kernel.Bounds.MaxY,
			m.kernel.GridEps, m.kernel.GridRes,
		} {
			b = appendF64(b, f)
		}
	}
	if m.kernel.Kind == dpe.KernelTwoLayer {
		for _, f := range []float64{
			m.kernel.Bounds.MinX, m.kernel.Bounds.MinY,
			m.kernel.Bounds.MaxX, m.kernel.Bounds.MaxY,
			m.kernel.RefineEps,
		} {
			b = appendF64(b, f)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(m.kernel.TileNX))
		b = binary.LittleEndian.AppendUint32(b, uint32(m.kernel.TileNY))
		b = append(b, m.kernel.Predicate)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.broadcast)))
	return append(b, m.broadcast...)
}

func decodePlan(b []byte) (planMsg, error) {
	r := newReader(b)
	var m planMsg
	m.id = r.u64()
	m.eps = r.f64()
	flags := r.u8()
	m.selfFilter = flags&planFlagSelfFilter != 0
	m.collect = flags&planFlagCollect != 0
	m.kernel.Kind = dpe.KernelKind(r.u8())
	if m.kernel.Kind == dpe.KernelRefPoint {
		m.kernel.Bounds.MinX = r.f64()
		m.kernel.Bounds.MinY = r.f64()
		m.kernel.Bounds.MaxX = r.f64()
		m.kernel.Bounds.MaxY = r.f64()
		m.kernel.GridEps = r.f64()
		m.kernel.GridRes = r.f64()
	}
	if m.kernel.Kind == dpe.KernelTwoLayer {
		m.kernel.Bounds.MinX = r.f64()
		m.kernel.Bounds.MinY = r.f64()
		m.kernel.Bounds.MaxX = r.f64()
		m.kernel.Bounds.MaxY = r.f64()
		m.kernel.RefineEps = r.f64()
		m.kernel.TileNX = int(r.u32())
		m.kernel.TileNY = int(r.u32())
		m.kernel.Predicate = r.u8()
	}
	n := int(r.u32())
	m.broadcast = append([]byte(nil), r.take(n)...)
	return m, r.err("plan")
}

// taskHeader identifies one task attempt: (plan, partition, attempt).
type taskHeader struct {
	plan    uint64
	part    uint32
	attempt uint32
}

func appendTaskHeader(b []byte, h taskHeader) []byte {
	b = binary.LittleEndian.AppendUint64(b, h.plan)
	b = binary.LittleEndian.AppendUint32(b, h.part)
	return binary.LittleEndian.AppendUint32(b, h.attempt)
}

func readTaskHeader(r *reader) taskHeader {
	return taskHeader{plan: r.u64(), part: r.u32(), attempt: r.u32()}
}

// encodeTask frames one reduce partition's shuffle records. isLocal
// classifies a record's producing map split as co-located with the
// receiving worker; the returned local/remote byte counts cover the
// record payload (cell key + tuple wire bytes) — the cluster's measured
// counterpart of the engine's modelled shuffle reads.
func encodeTask(h taskHeader, rs, ss []dpe.Keyed, isLocal func(src int) bool) (frame []byte, local, remote int64) {
	size := 16 + 8
	for _, rec := range rs {
		size += 8 + rec.T.WireSize()
	}
	for _, rec := range ss {
		size += 8 + rec.T.WireSize()
	}
	b := make([]byte, 0, size)
	b = appendTaskHeader(b, h)
	for _, side := range [2][]dpe.Keyed{rs, ss} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(side)))
		for _, rec := range side {
			n0 := len(b)
			b = binary.LittleEndian.AppendUint64(b, uint64(rec.Cell))
			b = tuple.AppendTuple(b, rec.T)
			if isLocal(rec.Src) {
				local += int64(len(b) - n0)
			} else {
				remote += int64(len(b) - n0)
			}
		}
	}
	return appendFrame(msgTask, b), local, remote
}

func decodeTask(b []byte) (h taskHeader, rs, ss []dpe.Keyed, err error) {
	r := newReader(b)
	h = readTaskHeader(r)
	for side := 0; side < 2; side++ {
		n := int(r.u32())
		if !r.ok || n < 0 || n > len(r.b) {
			return h, nil, nil, fmt.Errorf("cluster: task frame declares %d records beyond its size", n)
		}
		recs := make([]dpe.Keyed, 0, n)
		for i := 0; i < n; i++ {
			cell := int(int64(r.u64()))
			t, consumed, terr := tuple.DecodeTuple(r.b)
			if !r.ok || terr != nil {
				return h, nil, nil, fmt.Errorf("cluster: short task frame")
			}
			r.b = r.b[consumed:]
			recs = append(recs, dpe.Keyed{Cell: cell, T: t})
		}
		if side == 0 {
			rs = recs
		} else {
			ss = recs
		}
	}
	return h, rs, ss, r.err("task")
}

// colsRowWire is the wire footprint of one slab row: the f64 x, f64 y
// and i64 id lanes (ranks live in the per-group directory, not per
// row). Used for the local/remote shuffle split of a columnar task
// frame.
const colsRowWire = 8 + 8 + 8

// appendSlab writes one side of a columnar task: the group directory
// (rank list + offsets) followed by the raw column lanes. The row count
// is implied by the last offset.
func appendSlab(b []byte, s *colpipe.Slab) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Ranks)))
	for _, r := range s.Ranks {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}
	for _, o := range s.Starts {
		b = binary.LittleEndian.AppendUint32(b, uint32(o))
	}
	for _, x := range s.Xs {
		b = appendF64(b, x)
	}
	for _, y := range s.Ys {
		b = appendF64(b, y)
	}
	for _, id := range s.IDs {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	return b
}

func slabWireSize(s *colpipe.Slab) int {
	return 4 + 4*len(s.Ranks) + 4*len(s.Starts) + colsRowWire*s.Rows()
}

// readSlab decodes one side of a columnar task into dst. The lanes are
// copied out of the frame so the slab outlives the read buffer.
func readSlab(r *reader, dst *colpipe.Slab) error {
	ng := int(r.u32())
	if !r.ok || ng < 0 || 4*ng > len(r.b) {
		return fmt.Errorf("cluster: columnar task frame declares %d groups beyond its size", ng)
	}
	dst.Ranks = make([]int32, ng)
	for i := range dst.Ranks {
		dst.Ranks[i] = int32(r.u32())
	}
	dst.Starts = make([]int32, ng+1)
	for i := range dst.Starts {
		dst.Starts[i] = int32(r.u32())
	}
	rows := 0
	if r.ok {
		rows = int(dst.Starts[ng])
	}
	if rows < 0 || colsRowWire*rows > len(r.b) {
		return fmt.Errorf("cluster: columnar task frame declares %d rows beyond its size", rows)
	}
	for i := 0; i+1 < len(dst.Starts); i++ {
		if dst.Starts[i] > dst.Starts[i+1] || dst.Starts[i] < 0 {
			return fmt.Errorf("cluster: columnar task frame has non-monotonic group offsets")
		}
	}
	dst.Xs = make([]float64, rows)
	for i := range dst.Xs {
		dst.Xs[i] = r.f64()
	}
	dst.Ys = make([]float64, rows)
	for i := range dst.Ys {
		dst.Ys[i] = r.f64()
	}
	dst.IDs = make([]int64, rows)
	for i := range dst.IDs {
		dst.IDs[i] = int64(r.u64())
	}
	return nil
}

// encodeTaskCols frames one reduce partition in the pipeline's native
// columnar form: per side, the slab's group directory followed by the
// raw x/y/id lanes, which the worker decodes straight into kernel-ready
// slabs — no tuple structs on either end. The local/remote byte split
// attributes each producing map split's rows (WorkerRows × the per-row
// lane footprint) by isLocal; the group directory bytes belong to the
// partition, not a producer, and are left unattributed.
func encodeTaskCols(h taskHeader, rs, ss *colpipe.Slab, isLocal func(src int) bool) (frame []byte, local, remote int64) {
	b := make([]byte, 0, 16+slabWireSize(rs)+slabWireSize(ss))
	b = appendTaskHeader(b, h)
	b = appendSlab(b, rs)
	b = appendSlab(b, ss)
	for _, side := range [2]*colpipe.Slab{rs, ss} {
		for w, rows := range side.WorkerRows {
			if isLocal(w) {
				local += colsRowWire * int64(rows)
			} else {
				remote += colsRowWire * int64(rows)
			}
		}
	}
	return appendFrame(msgTaskCols, b), local, remote
}

func decodeTaskCols(b []byte) (h taskHeader, rs, ss *colpipe.Slab, err error) {
	r := newReader(b)
	h = readTaskHeader(r)
	rs, ss = &colpipe.Slab{}, &colpipe.Slab{}
	if err := readSlab(r, rs); err != nil {
		return h, nil, nil, err
	}
	if err := readSlab(r, ss); err != nil {
		return h, nil, nil, err
	}
	return h, rs, ss, r.err("columnar task")
}

// resultMsg carries one completed task's join outcome back to the
// coordinator, including the worker-side execution time for the busy
// clocks and straggler statistics.
type resultMsg struct {
	taskHeader
	dur      time.Duration
	results  int64
	checksum uint64
	cost     int64
	pairs    []tuple.Pair
}

func (m resultMsg) encode() []byte {
	b := make([]byte, 0, 16+40+len(m.pairs)*tuple.PairWireSize)
	b = appendTaskHeader(b, m.taskHeader)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.dur))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.results))
	b = binary.LittleEndian.AppendUint64(b, m.checksum)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.cost))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.pairs)))
	for _, p := range m.pairs {
		b = tuple.AppendPair(b, p)
	}
	return b
}

func decodeResult(b []byte) (resultMsg, error) {
	r := newReader(b)
	var m resultMsg
	m.taskHeader = readTaskHeader(r)
	m.dur = time.Duration(r.u64())
	m.results = int64(r.u64())
	m.checksum = r.u64()
	m.cost = int64(r.u64())
	n := int(r.u32())
	if !r.ok || n < 0 || n*tuple.PairWireSize > len(r.b) {
		return m, fmt.Errorf("cluster: result frame declares %d pairs beyond its size", n)
	}
	if n > 0 {
		m.pairs = make([]tuple.Pair, n)
		for i := 0; i < n; i++ {
			p, err := tuple.DecodePair(r.take(tuple.PairWireSize))
			if err != nil {
				return m, err
			}
			m.pairs[i] = p
		}
	}
	return m, r.err("result")
}

// taskErrMsg reports a failed task attempt.
type taskErrMsg struct {
	taskHeader
	msg string
}

func (m taskErrMsg) encode() []byte {
	return appendStr16(appendTaskHeader(nil, m.taskHeader), m.msg)
}

func decodeTaskErr(b []byte) (taskErrMsg, error) {
	r := newReader(b)
	m := taskErrMsg{taskHeader: readTaskHeader(r)}
	m.msg = r.str16()
	return m, r.err("task error")
}

// cancelMsg tells a worker to drop one task (a speculation race it
// lost, or a plan that was abandoned).
type cancelMsg struct {
	plan uint64
	part uint32
}

func (m cancelMsg) encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.plan)
	return binary.LittleEndian.AppendUint32(b, m.part)
}

func decodeCancel(b []byte) (cancelMsg, error) {
	r := newReader(b)
	m := cancelMsg{plan: r.u64(), part: r.u32()}
	return m, r.err("cancel")
}

// traceMsg hands a worker the trace context for one plan: the trace id,
// the execute span its task spans should parent under, and a per-worker
// span-id base so ids minted in different processes never collide when
// stitched at the coordinator. The version byte is echoed so a frame
// replayed across protocol revisions is rejected rather than misparsed.
type traceMsg struct {
	version byte
	plan    uint64
	traceID uint64
	parent  uint64 // span id worker task spans hang under
	idBase  uint64 // first span id (exclusive) this worker may mint
}

func (m traceMsg) encode() []byte {
	b := append([]byte(nil), protoVersion)
	b = binary.LittleEndian.AppendUint64(b, m.plan)
	b = binary.LittleEndian.AppendUint64(b, m.traceID)
	b = binary.LittleEndian.AppendUint64(b, m.parent)
	return binary.LittleEndian.AppendUint64(b, m.idBase)
}

func decodeTrace(b []byte) (traceMsg, error) {
	r := newReader(b)
	m := traceMsg{version: r.u8()}
	if r.ok && m.version != protoVersion {
		return m, fmt.Errorf("cluster: trace frame speaks protocol v%d, want v%d", m.version, protoVersion)
	}
	m.plan = r.u64()
	m.traceID = r.u64()
	m.parent = r.u64()
	m.idBase = r.u64()
	return m, r.err("trace")
}

// spansMsg ships a batch of finished worker-side spans back to the
// coordinator, which stitches them into the plan's trace. Sent on the
// same connection before the task's result frame, so the run is still
// live when the spans arrive.
type spansMsg struct {
	plan  uint64
	spans []obs.Span
}

func (m spansMsg) encode() []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.plan)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.spans)))
	for _, s := range m.spans {
		b = binary.LittleEndian.AppendUint64(b, uint64(s.ID))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Parent))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Start))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Done))
		b = appendStr16(b, s.Name)
		b = appendStr16(b, s.Worker)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Attrs)))
		for _, a := range s.Attrs {
			b = appendStr16(b, a.Key)
			if a.IsStr {
				b = append(b, 1)
				b = appendStr16(b, a.Str)
			} else {
				b = append(b, 0)
				b = binary.LittleEndian.AppendUint64(b, uint64(a.Int))
			}
		}
	}
	return b
}

func decodeSpans(b []byte) (spansMsg, error) {
	r := newReader(b)
	m := spansMsg{plan: r.u64()}
	n := int(r.u32())
	// Each span is at least 8+8+8+8 id/parent/start/done + 2+2 empty
	// names + 2 attr count bytes on the wire.
	if !r.ok || n < 0 || n*38 > len(r.b) {
		return m, fmt.Errorf("cluster: spans frame declares %d spans beyond its size", n)
	}
	m.spans = make([]obs.Span, 0, n)
	for i := 0; i < n; i++ {
		s := obs.Span{
			ID:     obs.SpanID(r.u64()),
			Parent: obs.SpanID(r.u64()),
			Start:  int64(r.u64()),
			Done:   int64(r.u64()),
			Name:   r.str16(),
			Worker: r.str16(),
		}
		na := int(r.u16())
		if !r.ok || na*11 > len(r.b) {
			return m, fmt.Errorf("cluster: spans frame declares %d attrs beyond its size", na)
		}
		for j := 0; j < na; j++ {
			a := obs.Attr{Key: r.str16()}
			if r.u8() == 1 {
				a.IsStr = true
				a.Str = r.str16()
			} else {
				a.Int = int64(r.u64())
			}
			s.Attrs = append(s.Attrs, a)
		}
		m.spans = append(m.spans, s)
	}
	return m, r.err("spans")
}

func encodePlanDone(plan uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, plan)
}

func decodePlanDone(b []byte) (uint64, error) {
	r := newReader(b)
	id := r.u64()
	return id, r.err("plan done")
}
