package cluster

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"slices"
	"sort"
	"testing"
	"time"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/tuple"
)

// testHarness is one coordinator plus in-process workers, each on its own
// cancellable context so tests can kill them individually.
type testHarness struct {
	t     *testing.T
	coord *Coordinator
	kill  []context.CancelFunc
	done  []chan error
}

// testLogWriter adapts t.Logf into an io.Writer for slog handlers.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

func startHarness(t *testing.T, cfg Config, workers ...WorkerOptions) *testHarness {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = testLogger(t)
	}
	coord, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	h := &testHarness{t: t, coord: coord}
	t.Cleanup(func() {
		coord.Close()
		for _, k := range h.kill {
			k()
		}
		for _, d := range h.done {
			<-d
		}
	})
	for _, w := range workers {
		h.addWorker(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, len(workers)); err != nil {
		t.Fatalf("WaitForWorkers: %v", err)
	}
	return h
}

func (h *testHarness) addWorker(opt WorkerOptions) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	h.kill = append(h.kill, cancel)
	h.done = append(h.done, done)
	go func() {
		done <- RunWorker(ctx, h.coord.Addr().String(), opt)
	}()
}

// uniRSpec builds a UNI(R)-style spec (R replicated on a 2ε grid) over the
// seed generators' distributions.
func uniRSpec(rs, ss []tuple.Tuple, eps float64, collect bool) dpe.Spec {
	g := grid.New(datagen.World(), eps, 2)
	return dpe.Spec{
		R: rs, S: ss, Eps: eps,
		AssignR: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		},
		AssignS: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, false, dst)
		},
		Part:    dpe.HashPartitioner{N: 24},
		Workers: 3,
		Collect: collect,
	}
}

// cloneSpec builds a clone-join spec whose reference-point kernel must be
// rebuilt by workers from the wire description.
func cloneSpec(rs, ss []tuple.Tuple, eps float64) dpe.Spec {
	bounds := datagen.World()
	g := grid.New(bounds, eps, 2)
	both := func(p geom.Point, set tuple.Set, dst []int) []int {
		return replicate.Universal(g, p, true, dst)
	}
	return dpe.Spec{
		R: rs, S: ss, Eps: eps,
		AssignR: both, AssignS: both,
		Part:       dpe.HashPartitioner{N: 24},
		Workers:    3,
		Collect:    true,
		Kernel:     pbsm.RefPointKernel(g),
		KernelDesc: dpe.KernelDesc{Kind: dpe.KernelRefPoint, Bounds: bounds, GridEps: eps, GridRes: 2},
	}
}

func sortPairs(ps []tuple.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

// runBoth executes the same spec on the local engine and on the cluster
// engine and asserts identical results.
func runBoth(t *testing.T, h *testHarness, spec dpe.Spec) (*dpe.Result, *dpe.Result) {
	t.Helper()
	local, err := dpe.Run(spec)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	spec.Engine = h.coord.Engine()
	clustered, err := dpe.Run(spec)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if clustered.Results != local.Results {
		t.Errorf("cluster found %d pairs, local %d", clustered.Results, local.Results)
	}
	if clustered.Checksum != local.Checksum {
		t.Errorf("cluster checksum %#x, local %#x", clustered.Checksum, local.Checksum)
	}
	if spec.Collect {
		sortPairs(local.Pairs)
		sortPairs(clustered.Pairs)
		if len(local.Pairs) != len(clustered.Pairs) {
			t.Fatalf("cluster collected %d pairs, local %d", len(clustered.Pairs), len(local.Pairs))
		}
		for i := range local.Pairs {
			if local.Pairs[i] != clustered.Pairs[i] {
				t.Fatalf("pair %d differs: cluster %v, local %v", i, clustered.Pairs[i], local.Pairs[i])
			}
		}
	}
	return local, clustered
}

func TestClusterMatchesLocal(t *testing.T) {
	world := datagen.World()
	rsUni := datagen.Uniform(world, 2000, 1, 0)
	ssUni := datagen.Uniform(world, 2000, 2, 1<<20)
	rsGau := datagen.GaussianClusters(world, 2000, 30, 0.1, 0.8, 3, 2<<20)
	ssGau := datagen.GaussianClusters(world, 2000, 30, 0.1, 0.8, 4, 3<<20)

	h := startHarness(t, Config{}, WorkerOptions{Name: "w0"}, WorkerOptions{Name: "w1"}, WorkerOptions{Name: "w2"})

	t.Run("uniform", func(t *testing.T) {
		_, clustered := runBoth(t, h, uniRSpec(rsUni, ssUni, 0.5, true))
		cm := clustered.Cluster
		if cm.Workers != 3 {
			t.Errorf("run used %d workers, want 3", cm.Workers)
		}
		if cm.TaskBytesLocal <= 0 || cm.TaskBytesRemote <= 0 {
			t.Errorf("measured shuffle bytes local=%d remote=%d, want both positive", cm.TaskBytesLocal, cm.TaskBytesRemote)
		}
		if cm.BroadcastBytes <= 0 || clustered.BroadcastBytes != cm.BroadcastBytes {
			t.Errorf("BroadcastBytes=%d, Cluster.BroadcastBytes=%d, want equal and positive", clustered.BroadcastBytes, cm.BroadcastBytes)
		}
		if cm.Tasks <= 0 || cm.ResultBytes <= 0 {
			t.Errorf("Tasks=%d ResultBytes=%d, want both positive", cm.Tasks, cm.ResultBytes)
		}
	})
	t.Run("gaussian", func(t *testing.T) {
		runBoth(t, h, uniRSpec(rsGau, ssGau, 0.5, true))
	})
	t.Run("count-only", func(t *testing.T) {
		_, clustered := runBoth(t, h, uniRSpec(rsUni, ssUni, 0.5, false))
		if clustered.Pairs != nil {
			t.Errorf("count-only run materialised %d pairs", len(clustered.Pairs))
		}
	})
	t.Run("clone-refpoint-kernel", func(t *testing.T) {
		runBoth(t, h, cloneSpec(rsGau, ssGau, 0.5))
	})
	t.Run("smaller-exec-eps", func(t *testing.T) {
		spec := uniRSpec(rsUni, ssUni, 0.5, true)
		localPr, err := dpe.Prepare(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Engine = h.coord.Engine()
		clusterPr, err := dpe.Prepare(spec)
		if err != nil {
			t.Fatal(err)
		}
		local, err := localPr.Execute(dpe.ExecOptions{Eps: 0.25, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		clustered, err := clusterPr.Execute(dpe.ExecOptions{Eps: 0.25, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		if clustered.Results != local.Results || clustered.Checksum != local.Checksum {
			t.Errorf("eps=0.25 re-sweep: cluster (%d, %#x), local (%d, %#x)",
				clustered.Results, clustered.Checksum, local.Results, local.Checksum)
		}
	})
}

func TestClusterDedup(t *testing.T) {
	world := datagen.World()
	rs := datagen.Uniform(world, 1500, 5, 0)
	ss := datagen.Uniform(world, 1500, 6, 1<<20)
	h := startHarness(t, Config{}, WorkerOptions{Name: "w0"}, WorkerOptions{Name: "w1"})

	// Clone join WITHOUT the reference-point filter emits duplicates; the
	// engine-level distinct() pass must remove them identically on both
	// backends.
	spec := cloneSpec(rs, ss, 0.5)
	spec.Kernel, spec.KernelDesc = nil, dpe.KernelDesc{}
	spec.Dedup = true
	local, clustered := runBoth(t, h, spec)
	if local.DedupInput <= local.Results {
		t.Fatalf("dedup scenario produced no duplicates (in=%d out=%d) — test is vacuous", local.DedupInput, local.Results)
	}
	if clustered.DedupInput != local.DedupInput {
		t.Errorf("cluster dedup input %d, local %d", clustered.DedupInput, local.DedupInput)
	}
}

func TestClusterWorkerDeathMidJoin(t *testing.T) {
	world := datagen.World()
	rs := datagen.Uniform(world, 2000, 7, 0)
	ss := datagen.Uniform(world, 2000, 8, 1<<20)

	// The victim stalls every task long enough for the kill to land while
	// its share of partitions is still outstanding.
	h := startHarness(t, Config{HeartbeatInterval: 50 * time.Millisecond},
		WorkerOptions{Name: "victim", TaskDelay: 400 * time.Millisecond, Parallel: 1},
		WorkerOptions{Name: "s1"},
		WorkerOptions{Name: "s2"},
	)

	spec := uniRSpec(rs, ss, 0.5, true)
	local, err := dpe.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	spec.Engine = h.coord.Engine()
	resCh := make(chan *dpe.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := dpe.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Kill the victim while its tasks are in flight (worker 0 gets the
	// plan first, so it owns partitions 0, 3, 6, ...).
	time.Sleep(100 * time.Millisecond)
	h.kill[0]()

	select {
	case err := <-errCh:
		t.Fatalf("cluster run failed after worker death: %v", err)
	case res := <-resCh:
		if res.Results != local.Results || res.Checksum != local.Checksum {
			t.Errorf("after worker death: cluster (%d, %#x), local (%d, %#x)",
				res.Results, res.Checksum, local.Results, local.Checksum)
		}
		sortPairs(res.Pairs)
		sortPairs(local.Pairs)
		if len(res.Pairs) != len(local.Pairs) {
			t.Fatalf("after worker death: %d pairs, want %d", len(res.Pairs), len(local.Pairs))
		}
		for i := range local.Pairs {
			if res.Pairs[i] != local.Pairs[i] {
				t.Fatalf("pair %d differs after worker death", i)
			}
		}
		if res.Cluster.Retries == 0 {
			t.Errorf("worker died mid-join but no task was retried")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster run did not finish after worker death")
	}

	st := h.coord.Stats()
	if st.WorkersLost == 0 {
		t.Errorf("Stats().WorkersLost = 0 after killing a worker")
	}
}

func TestClusterSpeculativeStraggler(t *testing.T) {
	world := datagen.World()
	rs := datagen.Uniform(world, 1500, 9, 0)
	ss := datagen.Uniform(world, 1500, 10, 1<<20)

	// One healthy worker, one straggler that stalls every task far past
	// the threshold: its partitions must be speculatively duplicated on
	// the healthy worker, whose copies win.
	h := startHarness(t,
		Config{StragglerMin: 100 * time.Millisecond, StragglerFactor: 2},
		WorkerOptions{Name: "fast"},
		WorkerOptions{Name: "slow", TaskDelay: 5 * time.Second, Parallel: 1},
	)

	spec := uniRSpec(rs, ss, 0.5, true)
	local, err := dpe.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = h.coord.Engine()
	start := time.Now()
	clustered, err := dpe.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("run took %v: speculation should beat the 5s straggler delay", elapsed)
	}
	if clustered.Results != local.Results || clustered.Checksum != local.Checksum {
		t.Errorf("speculative run: cluster (%d, %#x), local (%d, %#x)",
			clustered.Results, clustered.Checksum, local.Results, local.Checksum)
	}
	cm := clustered.Cluster
	if cm.SpeculativeLaunched == 0 {
		t.Errorf("no speculative attempt launched against a %v straggler", 5*time.Second)
	}
	if cm.SpeculativeWins == 0 {
		t.Errorf("speculative attempts launched (%d) but none won", cm.SpeculativeLaunched)
	}
}

func TestClusterErrors(t *testing.T) {
	rs := datagen.Uniform(datagen.World(), 100, 11, 0)
	ss := datagen.Uniform(datagen.World(), 100, 12, 1<<20)

	t.Run("no-workers", func(t *testing.T) {
		coord, err := Listen("127.0.0.1:0", Config{Log: testLogger(t)})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		spec := uniRSpec(rs, ss, 0.5, false)
		spec.Engine = coord.Engine()
		if _, err := dpe.Run(spec); !errors.Is(err, ErrNoWorkers) {
			t.Errorf("run with no workers: err = %v, want ErrNoWorkers", err)
		}
	})
	t.Run("custom-kernel", func(t *testing.T) {
		h := startHarness(t, Config{}, WorkerOptions{Name: "w0"})
		spec := uniRSpec(rs, ss, 0.5, false)
		spec.Kernel = pbsm.RefPointKernel(grid.New(datagen.World(), 0.5, 2)) // no KernelDesc: not portable
		spec.Engine = h.coord.Engine()
		if _, err := dpe.Run(spec); !errors.Is(err, ErrKernelNotPortable) {
			t.Errorf("run with undescribed kernel: err = %v, want ErrKernelNotPortable", err)
		}
	})
	t.Run("cancelled-context", func(t *testing.T) {
		h := startHarness(t, Config{}, WorkerOptions{Name: "w0", TaskDelay: time.Second})
		spec := uniRSpec(rs, ss, 0.5, false)
		spec.Engine = h.coord.Engine()
		pr, err := dpe.Prepare(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		if _, err := pr.ExecuteContext(ctx, dpe.ExecOptions{}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("cancelled run: err = %v, want DeadlineExceeded", err)
		}
	})
}

func TestClusterProtoRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		m, err := decodeHello(helloMsg{name: "w-1"}.encode())
		if err != nil || m.name != "w-1" {
			t.Fatalf("hello round trip: %+v, %v", m, err)
		}
		if _, err := decodeHello([]byte("XXXX\x01\x00\x00")); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("plan", func(t *testing.T) {
		in := planMsg{
			id: 7, eps: 0.25, selfFilter: true, collect: true,
			kernel:    dpe.KernelDesc{Kind: dpe.KernelRefPoint, Bounds: geom.NewRect(0, 0, 10, 20), GridEps: 0.5, GridRes: 2},
			broadcast: []byte{1, 2, 3},
		}
		out, err := decodePlan(in.encode())
		if err != nil {
			t.Fatal(err)
		}
		if out.id != in.id || out.eps != in.eps || !out.selfFilter || !out.collect ||
			out.kernel != in.kernel || string(out.broadcast) != string(in.broadcast) {
			t.Fatalf("plan round trip: got %+v, want %+v", out, in)
		}
	})
	t.Run("task", func(t *testing.T) {
		rs := []dpe.Keyed{{Cell: 5, Src: 0, T: tuple.Tuple{ID: 1, Pt: geom.Point{X: 1, Y: 2}}}}
		ss := []dpe.Keyed{{Cell: 5, Src: 1, T: tuple.Tuple{ID: 2, Pt: geom.Point{X: 3, Y: 4}, Payload: []byte("p")}}}
		frame, local, remote := encodeTask(taskHeader{plan: 1, part: 2, attempt: 3}, rs, ss,
			func(src int) bool { return src == 0 })
		if local <= 0 || remote <= 0 {
			t.Fatalf("byte classification: local=%d remote=%d", local, remote)
		}
		h, gotR, gotS, err := decodeTask(frame[frameHeader:])
		if err != nil {
			t.Fatal(err)
		}
		if h != (taskHeader{plan: 1, part: 2, attempt: 3}) || len(gotR) != 1 || len(gotS) != 1 {
			t.Fatalf("task round trip: %+v, %d/%d records", h, len(gotR), len(gotS))
		}
		if gotR[0].Cell != 5 || gotR[0].T.ID != 1 || string(gotS[0].T.Payload) != "p" {
			t.Fatalf("task records corrupted: %+v / %+v", gotR[0], gotS[0])
		}
	})
	t.Run("taskCols", func(t *testing.T) {
		rs := &colpipe.Slab{
			Ranks:  []int32{1, 5},
			Starts: []int32{0, 2, 3},
			Xs:     []float64{1, 2, 3}, Ys: []float64{4, 5, 6}, IDs: []int64{7, 8, 9},
			WorkerRows: []int32{2, 1},
		}
		ss := &colpipe.Slab{
			Ranks:  []int32{5},
			Starts: []int32{0, 1},
			Xs:     []float64{2.5}, Ys: []float64{5.5}, IDs: []int64{11},
			WorkerRows: []int32{0, 1},
		}
		frame, local, remote := encodeTaskCols(taskHeader{plan: 4, part: 2, attempt: 1}, rs, ss,
			func(src int) bool { return src == 0 })
		if local != 2*colsRowWire || remote != 2*colsRowWire {
			t.Fatalf("byte classification: local=%d remote=%d, want %d each", local, remote, 2*colsRowWire)
		}
		h, gotR, gotS, err := decodeTaskCols(frame[frameHeader:])
		if err != nil {
			t.Fatal(err)
		}
		if h != (taskHeader{plan: 4, part: 2, attempt: 1}) {
			t.Fatalf("header round trip: %+v", h)
		}
		if !slices.Equal(gotR.Ranks, rs.Ranks) || !slices.Equal(gotR.Starts, rs.Starts) ||
			!slices.Equal(gotR.Xs, rs.Xs) || !slices.Equal(gotR.Ys, rs.Ys) || !slices.Equal(gotR.IDs, rs.IDs) {
			t.Fatalf("R slab corrupted: %+v", gotR)
		}
		if !slices.Equal(gotS.Ranks, ss.Ranks) || gotS.Rows() != 1 || gotS.IDs[0] != 11 {
			t.Fatalf("S slab corrupted: %+v", gotS)
		}
		// Lying group offsets must be rejected, not scanned past.
		bad := append([]byte(nil), frame[frameHeader:]...)
		bad[16+4+8] = 0xff // first Starts entry of the R slab
		if _, _, _, err := decodeTaskCols(bad); err == nil {
			t.Error("corrupt offsets accepted")
		}
	})
	t.Run("result", func(t *testing.T) {
		in := resultMsg{
			taskHeader: taskHeader{plan: 9, part: 1, attempt: 0},
			dur:        time.Second, results: 2, checksum: 0xbeef, cost: 42,
			pairs: []tuple.Pair{{RID: 1, SID: 2}, {RID: 3, SID: 4}},
		}
		out, err := decodeResult(in.encode())
		if err != nil {
			t.Fatal(err)
		}
		if out.taskHeader != in.taskHeader || out.dur != in.dur || out.results != in.results ||
			out.checksum != in.checksum || out.cost != in.cost || len(out.pairs) != 2 || out.pairs[1] != in.pairs[1] {
			t.Fatalf("result round trip: got %+v, want %+v", out, in)
		}
	})
}
