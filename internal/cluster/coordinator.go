package cluster

import (
	"bufio"
	"cmp"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// ErrNoWorkers is returned when an execution needs a worker and none is
// live (or none survives to the end of the run).
var ErrNoWorkers = errors.New("cluster: no live workers")

// ErrKernelNotPortable is returned for plans whose join kernel has no
// wire description (e.g. the Sedona R-tree kernel): they run on the
// local engine only.
var ErrKernelNotPortable = errors.New("cluster: plan kernel cannot run on remote workers")

// maxTaskRetries bounds re-executions of one task before the run is
// declared failed.
const maxTaskRetries = 8

// Config tunes the coordinator. Zero values select defaults.
type Config struct {
	// HeartbeatInterval is the expected worker beacon period; default
	// 500ms. A worker silent for HeartbeatMisses intervals is declared
	// dead and its tasks are re-queued.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the tolerated number of missed beacons;
	// default 5.
	HeartbeatMisses int
	// StragglerMin is the floor a task must run before it can be
	// speculatively duplicated; default 2s.
	StragglerMin time.Duration
	// StragglerFactor scales the median completed-task time into the
	// speculation threshold (threshold = max(StragglerMin, factor ×
	// median)); default 3.
	StragglerFactor float64
	// MaxFrame bounds one protocol frame; default 1 GiB.
	MaxFrame int
	// Log receives structured progress and fault events; nil discards
	// them.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 5
	}
	if c.StragglerMin <= 0 {
		c.StragglerMin = 2 * time.Second
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 3
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = defaultMaxFrame
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c
}

// Stats is a point-in-time snapshot of the coordinator's lifetime
// counters.
type Stats struct {
	Workers       int   // currently live worker processes
	WorkersJoined int64 // handshakes accepted since start
	WorkersLost   int64 // workers declared dead (conn error or heartbeat miss)

	Tasks               int64 // tasks completed across all runs
	Retries             int64 // task re-executions after failures
	SpeculativeLaunched int64 // duplicate attempts launched for stragglers
	SpeculativeWins     int64 // speculative attempts that finished first

	TaskBytesLocal  int64 // streamed task bytes headed to the map-local worker
	TaskBytesRemote int64 // streamed task bytes crossing worker boundaries
	BroadcastBytes  int64 // plan frames shipped (grid, agreements, placement)
	ResultBytes     int64 // result frames received
}

// Coordinator accepts worker connections and executes prepared joins on
// them. It implements the engine side of the protocol; its Engine method
// adapts it to dpe.Engine so orchestrators can treat it as a drop-in
// backend.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	workers  map[int64]*remote
	runs     map[uint64]*run
	nextWID  int64
	memberCh chan struct{} // closed and replaced on every membership change
	closed   bool

	nextPlan atomic.Uint64

	stWorkersJoined, stWorkersLost               atomic.Int64
	stTasks, stRetries, stSpecLaunch, stSpecWins atomic.Int64
	stBytesLocal, stBytesRemote                  atomic.Int64
	stBroadcast, stResultBytes                   atomic.Int64
}

// remote is the coordinator's handle on one connected worker.
type remote struct {
	id   int64
	name string
	conn net.Conn

	wmu      sync.Mutex // serialises frame writes
	lastSeen atomic.Int64
	dead     atomic.Bool
}

func (w *remote) send(frame []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err := w.conn.Write(frame)
	return err
}

// Listen starts a coordinator on addr (e.g. ":7077", or ":0" to pick a
// free port, discoverable via Addr).
func Listen(addr string, cfg Config) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg.withDefaults(),
		ln:       ln,
		workers:  map[int64]*remote{},
		runs:     map[uint64]*run{},
		memberCh: make(chan struct{}),
	}
	go c.acceptLoop()
	go c.monitorLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Close stops accepting workers and disconnects the connected ones.
// In-flight runs fail with ErrNoWorkers.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := make([]*remote, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, w := range workers {
		c.dropWorker(w, errors.New("coordinator closed"))
	}
	return err
}

// NumWorkers returns the number of live workers.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitForWorkers blocks until at least n workers are connected or ctx
// expires.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		have, ch, closed := len(c.workers), c.memberCh, c.closed
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		if closed {
			return errors.New("cluster: coordinator closed")
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d workers (have %d): %w", n, have, ctx.Err())
		}
	}
}

// Stats snapshots the lifetime counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Workers:             c.NumWorkers(),
		WorkersJoined:       c.stWorkersJoined.Load(),
		WorkersLost:         c.stWorkersLost.Load(),
		Tasks:               c.stTasks.Load(),
		Retries:             c.stRetries.Load(),
		SpeculativeLaunched: c.stSpecLaunch.Load(),
		SpeculativeWins:     c.stSpecWins.Load(),
		TaskBytesLocal:      c.stBytesLocal.Load(),
		TaskBytesRemote:     c.stBytesRemote.Load(),
		BroadcastBytes:      c.stBroadcast.Load(),
		ResultBytes:         c.stResultBytes.Load(),
	}
}

// Engine adapts the coordinator to the data-parallel engine's pluggable
// backend interface.
func (c *Coordinator) Engine() dpe.Engine { return engine{c} }

// acceptLoop admits workers: each connection must open with a hello
// frame before it joins the pool.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handshake(conn)
	}
}

func (c *Coordinator) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	typ, payload, err := readFrame(br, 1<<16)
	if err != nil || typ != msgHello {
		conn.Close()
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		c.cfg.Log.Warn("rejecting worker", "err", err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	w := &remote{name: hello.name, conn: conn}
	w.lastSeen.Store(time.Now().UnixNano())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.nextWID++
	w.id = c.nextWID
	c.workers[w.id] = w
	close(c.memberCh)
	c.memberCh = make(chan struct{})
	c.mu.Unlock()
	c.stWorkersJoined.Add(1)
	c.cfg.Log.Info("worker joined",
		"worker", w.id, "name", w.name, "addr", conn.RemoteAddr().String())

	c.readLoop(w, br)
}

// readLoop consumes a worker's frames until the connection breaks.
func (c *Coordinator) readLoop(w *remote, br *bufio.Reader) {
	for {
		typ, payload, err := readFrame(br, c.cfg.MaxFrame)
		if err != nil {
			c.dropWorker(w, err)
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch typ {
		case msgHeartbeat:
			// lastSeen update above is the whole point.
		case msgResult:
			c.handleResult(w, payload)
		case msgTaskErr:
			c.handleTaskErr(w, payload)
		case msgSpans:
			c.handleSpans(w, payload)
		default:
			c.dropWorker(w, fmt.Errorf("unexpected frame type %d", typ))
			return
		}
	}
}

// monitorLoop declares workers dead when their heartbeats stop.
func (c *Coordinator) monitorLoop() {
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	limit := time.Duration(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatInterval
	for range ticker.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var stale []*remote
		now := time.Now().UnixNano()
		for _, w := range c.workers {
			if now-w.lastSeen.Load() > int64(limit) {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.dropWorker(w, fmt.Errorf("missed %d heartbeats", c.cfg.HeartbeatMisses))
		}
	}
}

// dropWorker removes a worker from the pool and re-queues its unfinished
// task attempts on survivors. Idempotent; never called with locks held.
func (c *Coordinator) dropWorker(w *remote, cause error) {
	if !w.dead.CompareAndSwap(false, true) {
		return
	}
	w.conn.Close()
	c.mu.Lock()
	delete(c.workers, w.id)
	close(c.memberCh)
	c.memberCh = make(chan struct{})
	runs := make([]*run, 0, len(c.runs))
	for _, r := range c.runs {
		runs = append(runs, r)
	}
	closed := c.closed
	c.mu.Unlock()
	c.stWorkersLost.Add(1)
	if !closed {
		c.cfg.Log.Warn("worker lost", "worker", w.id, "name", w.name, "cause", cause)
	}
	for _, r := range runs {
		c.requeueWorker(r, w.id)
	}
}

// liveWorkers returns the live workers ordered by id.
func (c *Coordinator) liveWorkers() []*remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*remote, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w)
	}
	slices.SortFunc(out, func(a, b *remote) int { return cmp.Compare(a.id, b.id) })
	return out
}

// run is the coordinator-side state of one engine execution.
type run struct {
	id      uint64
	collect bool
	workers []*remote // plan recipients, in dispatch order (stable for src mapping)
	tr      *obs.Tracer
	traceID uint64 // for log fields; 0 when untraced

	mu      sync.Mutex
	tasks   map[uint32]*task
	pending int
	rr      int // round-robin cursor for re-assignments
	durs    []time.Duration
	failed  error
	done    chan struct{}

	results            int64
	checksum           uint64
	totalCost, maxCost int64
	pairs              []tuple.Pair
	busy               map[int64]time.Duration
	cm                 dpe.ClusterMetrics
}

// task is one reduce partition of a run: either the Keyed record
// buckets (rs/ss) or, for columnar plans, the kernel-ready slabs
// (colR/colS) — never both.
type task struct {
	part        uint32
	rs, ss      []dpe.Keyed
	colR, colS  *colpipe.Slab
	active      []attempt
	nextAttempt uint32
	retries     int
	completed   bool
}

type attempt struct {
	id          uint32
	worker      int64
	start       time.Time
	speculative bool
}

// engine adapts the coordinator to dpe.Engine.
type engine struct{ c *Coordinator }

// ExecutePrepared implements dpe.Engine: broadcast the plan, stream the
// partitions to their owners, collect results with retry and
// speculation, and assemble the metrics.
func (e engine) ExecutePrepared(ctx context.Context, pr *dpe.Prepared, opt dpe.ExecOptions) (*dpe.Result, error) {
	c := e.c
	kd := pr.WireKernel()
	if kd.Kind == dpe.KernelCustom {
		return nil, ErrKernelNotPortable
	}

	r := &run{
		id:      c.nextPlan.Add(1),
		collect: opt.Collect,
		tasks:   map[uint32]*task{},
		done:    make(chan struct{}),
		busy:    map[int64]time.Duration{},
		tr:      opt.Tracer,
		traceID: uint64(opt.Tracer.TraceID()),
	}
	execSp := r.tr.Start(opt.TraceParent, obs.SpanExecute)
	execSp.SetStr("engine", "cluster")
	defer execSp.End()

	// ---- Plan broadcast (Algorithm 5 line 6, in real bytes): grid,
	// agreements and placement travel to every worker before any tuple.
	planFrame := appendFrame(msgPlan, planMsg{
		id:         r.id,
		eps:        opt.Eps,
		selfFilter: pr.SelfFilter(),
		collect:    opt.Collect,
		kernel:     kd,
		broadcast:  pr.Broadcast(),
	}.encode())
	for _, w := range c.liveWorkers() {
		if err := w.send(planFrame); err != nil {
			c.dropWorker(w, err)
			continue
		}
		if r.tr != nil {
			// Hand the recipient the trace context right after the plan on
			// the same ordered connection: trace id, the execute span its
			// task spans parent under, and a worker-unique span-id base so
			// remote spans stitch without collisions.
			traceFrame := appendFrame(msgTrace, traceMsg{
				plan:    r.id,
				traceID: r.traceID,
				parent:  uint64(execSp.SpanID()),
				idBase:  uint64(w.id) << 40,
			}.encode())
			if err := w.send(traceFrame); err != nil {
				c.dropWorker(w, err)
				continue
			}
		}
		r.workers = append(r.workers, w)
		r.cm.BroadcastBytes += int64(len(planFrame))
	}
	if len(r.workers) == 0 {
		return nil, ErrNoWorkers
	}
	r.cm.Workers = len(r.workers)
	execSp.SetInt("workers", int64(len(r.workers)))

	c.mu.Lock()
	c.runs[r.id] = r
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.runs, r.id)
		c.mu.Unlock()
		c.accumulate(r)
	}()

	// ---- Task construction: one task per reduce partition that holds
	// records of both inputs (one-sided partitions cannot produce pairs,
	// matching the local engine's cell-level short circuit).
	start := time.Now()
	var tasks []*task
	for p := 0; p < pr.NumPartitions(); p++ {
		var t *task
		if pr.Columnar() {
			rs, ss := pr.ColumnarPartition(p)
			if rs.Rows() == 0 || ss.Rows() == 0 {
				continue
			}
			t = &task{part: uint32(p), colR: rs, colS: ss}
		} else {
			rs, ss := pr.Partition(p)
			if len(rs) == 0 || len(ss) == 0 {
				continue
			}
			t = &task{part: uint32(p), rs: rs, ss: ss}
		}
		r.tasks[t.part] = t
		tasks = append(tasks, t)
	}
	r.mu.Lock()
	r.pending = len(tasks)
	r.mu.Unlock()
	execSp.SetInt("partitions", int64(len(tasks)))

	if len(tasks) > 0 {
		// ---- The shuffle: partition i is owned by worker i mod W, the
		// same round-robin ownership the local engine and the LPT
		// placement assume.
		for i, t := range tasks {
			c.dispatch(r, t, r.workers[i%len(r.workers)], false)
		}

		stop := make(chan struct{})
		go c.speculateLoop(r, stop)
		select {
		case <-ctx.Done():
			close(stop)
			r.fail(ctx.Err())
			c.broadcastPlanDone(r)
			return nil, ctx.Err()
		case <-r.done:
			close(stop)
		}
		c.broadcastPlanDone(r)
		r.mu.Lock()
		err := r.failed
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	// ---- Assemble the result on top of the construction metrics.
	res := &dpe.Result{Metrics: pr.BuildMetrics()}
	res.JoinTime = time.Since(start)
	r.mu.Lock()
	res.Results = r.results
	res.Checksum = r.checksum
	res.TotalPartitionCost = r.totalCost
	res.MaxPartitionCost = r.maxCost
	if r.collect {
		res.Pairs = r.pairs
	}
	res.WorkerBusy = make([]time.Duration, 0, len(r.workers))
	for _, w := range r.workers {
		res.WorkerBusy = append(res.WorkerBusy, r.busy[w.id])
	}
	res.Cluster = r.cm
	r.mu.Unlock()
	res.BroadcastBytes = res.Cluster.BroadcastBytes
	return res, nil
}

// requeueWorker strips a dead worker's attempts from a run and re-queues
// tasks left with no active attempt.
func (c *Coordinator) requeueWorker(r *run, workerID int64) {
	type resend struct {
		t *task
		w *remote
	}
	var resends []resend
	r.mu.Lock()
	if r.failed != nil {
		r.mu.Unlock()
		return
	}
	for _, t := range r.tasks {
		if t.completed {
			continue
		}
		kept := t.active[:0]
		stripped := false
		for _, a := range t.active {
			if a.worker == workerID {
				stripped = true
				continue
			}
			kept = append(kept, a)
		}
		t.active = kept
		if !stripped || len(t.active) > 0 {
			continue
		}
		// The task's only attempt died: re-execute on a survivor.
		w := r.pickLocked(workerID)
		if w == nil {
			err := fmt.Errorf("%w: partition %d lost its last worker", ErrNoWorkers, t.part)
			r.failLocked(err)
			r.mu.Unlock()
			c.broadcastPlanDone(r)
			return
		}
		t.retries++
		r.cm.Retries++
		if t.retries > maxTaskRetries {
			r.failLocked(fmt.Errorf("cluster: partition %d failed %d times", t.part, t.retries))
			r.mu.Unlock()
			c.broadcastPlanDone(r)
			return
		}
		resends = append(resends, resend{t: t, w: w})
	}
	r.mu.Unlock()
	for _, rs := range resends {
		c.cfg.Log.Info("re-queueing partition",
			"plan", r.id, "trace", r.traceID, "partition", rs.t.part, "worker", rs.w.id)
		c.dispatch(r, rs.t, rs.w, false)
	}
}

// dispatch registers an attempt of t on w and streams the task frame —
// used for first executions, retries and speculation alike, so retry
// bytes are measured too. Must be called without r.mu or c.mu held.
func (c *Coordinator) dispatch(r *run, t *task, w *remote, speculative bool) {
	r.mu.Lock()
	if t.completed || r.failed != nil {
		r.mu.Unlock()
		return
	}
	att := attempt{id: t.nextAttempt, worker: w.id, start: time.Now(), speculative: speculative}
	t.nextAttempt++
	t.active = append(t.active, att)
	nw := len(r.workers)
	r.mu.Unlock()

	h := taskHeader{plan: r.id, part: t.part, attempt: att.id}
	isLocal := func(src int) bool { return r.workers[src%nw] == w }
	var frame []byte
	var local, remote int64
	if t.colR != nil {
		frame, local, remote = encodeTaskCols(h, t.colR, t.colS, isLocal)
	} else {
		frame, local, remote = encodeTask(h, t.rs, t.ss, isLocal)
	}
	r.mu.Lock()
	r.cm.TaskBytesLocal += local
	r.cm.TaskBytesRemote += remote
	r.mu.Unlock()
	if err := w.send(frame); err != nil {
		c.dropWorker(w, err)
	}
}

// pickLocked chooses the live plan recipient with the fewest active
// attempts, excluding a worker id. Caller holds r.mu.
func (r *run) pickLocked(exclude int64) *remote {
	load := map[int64]int{}
	for _, t := range r.tasks {
		if t.completed {
			continue
		}
		for _, a := range t.active {
			load[a.worker]++
		}
	}
	var best *remote
	bestLoad := 0
	for i := 0; i < len(r.workers); i++ {
		w := r.workers[(r.rr+i)%len(r.workers)]
		if w.id == exclude || w.dead.Load() {
			continue
		}
		if best == nil || load[w.id] < bestLoad {
			best, bestLoad = w, load[w.id]
		}
	}
	r.rr++
	return best
}

func (r *run) failLocked(err error) {
	if r.failed == nil {
		r.failed = err
		close(r.done)
	}
}

func (r *run) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending > 0 {
		r.failLocked(err)
	}
}

// handleResult settles one task attempt: the first result for a
// partition wins, later duplicates (lost speculation races) are dropped.
func (c *Coordinator) handleResult(w *remote, payload []byte) {
	m, err := decodeResult(payload)
	if err != nil {
		c.dropWorker(w, err)
		return
	}
	c.mu.Lock()
	r := c.runs[m.plan]
	c.mu.Unlock()
	if r == nil {
		return // plan already finished or abandoned
	}

	var losers []attempt
	r.mu.Lock()
	t := r.tasks[m.part]
	if t == nil || t.completed || r.failed != nil {
		r.mu.Unlock()
		return
	}
	t.completed = true
	winnerSpeculative := false
	for _, a := range t.active {
		if a.id == m.attempt {
			winnerSpeculative = a.speculative
		} else {
			losers = append(losers, a)
		}
	}
	t.active = nil
	// Free the partition buckets: a completed task's tuples are not
	// needed for any retry.
	t.rs, t.ss = nil, nil
	t.colR, t.colS = nil, nil

	r.durs = append(r.durs, m.dur)
	r.busy[w.id] += m.dur
	r.results += m.results
	r.checksum += m.checksum
	r.totalCost += m.cost
	if m.cost > r.maxCost {
		r.maxCost = m.cost
	}
	if r.collect {
		r.pairs = append(r.pairs, m.pairs...)
	}
	r.cm.Tasks++
	r.cm.ResultBytes += int64(frameHeader + len(payload))
	if winnerSpeculative {
		r.cm.SpeculativeWins++
	}
	r.pending--
	finished := r.pending == 0
	if finished {
		close(r.done)
	}
	r.mu.Unlock()

	// Cancel the losing attempts (best effort; a late result is ignored
	// anyway).
	if len(losers) > 0 {
		cancel := appendFrame(msgCancel, cancelMsg{plan: r.id, part: m.part}.encode())
		c.mu.Lock()
		for _, a := range losers {
			if lw := c.workers[a.worker]; lw != nil {
				go lw.send(cancel)
			}
		}
		c.mu.Unlock()
	}
}

// handleTaskErr re-queues a failed attempt on another worker.
func (c *Coordinator) handleTaskErr(w *remote, payload []byte) {
	m, err := decodeTaskErr(payload)
	if err != nil {
		c.dropWorker(w, err)
		return
	}
	c.mu.Lock()
	r := c.runs[m.plan]
	c.mu.Unlock()
	if r == nil {
		return
	}
	c.cfg.Log.Warn("task failed on worker",
		"plan", m.plan, "trace", r.traceID, "partition", m.part,
		"attempt", m.attempt, "worker", w.id, "err", m.msg)

	r.mu.Lock()
	t := r.tasks[m.part]
	if t == nil || t.completed || r.failed != nil {
		r.mu.Unlock()
		return
	}
	kept := t.active[:0]
	for _, a := range t.active {
		if a.id != m.attempt {
			kept = append(kept, a)
		}
	}
	t.active = kept
	if len(t.active) > 0 {
		r.mu.Unlock()
		return // a sibling attempt is still running
	}
	t.retries++
	r.cm.Retries++
	if t.retries > maxTaskRetries {
		r.failLocked(fmt.Errorf("cluster: partition %d failed %d times (last: %s)", t.part, t.retries, m.msg))
		r.mu.Unlock()
		c.broadcastPlanDone(r)
		return
	}
	next := r.pickLocked(w.id)
	if next == nil {
		next = r.pickLocked(-1) // accept the failing worker if it is the only one left
	}
	if next == nil {
		r.failLocked(fmt.Errorf("%w: partition %d has nowhere to retry", ErrNoWorkers, t.part))
		r.mu.Unlock()
		c.broadcastPlanDone(r)
		return
	}
	r.mu.Unlock()
	c.dispatch(r, t, next, false)
}

// speculateLoop duplicates straggling tasks: once a task's only attempt
// has run past max(StragglerMin, StragglerFactor × median completed
// duration), a second attempt is launched on another worker and the
// first finisher wins.
func (c *Coordinator) speculateLoop(r *run, stop <-chan struct{}) {
	interval := c.cfg.StragglerMin / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-r.done:
			return
		case <-ticker.C:
		}

		type spec struct {
			t *task
			w *remote
		}
		var specs []spec
		now := time.Now()
		r.mu.Lock()
		threshold := c.cfg.StragglerMin
		if n := len(r.durs); n > 0 {
			sorted := append([]time.Duration(nil), r.durs...)
			slices.Sort(sorted)
			if scaled := time.Duration(c.cfg.StragglerFactor * float64(sorted[n/2])); scaled > threshold {
				threshold = scaled
			}
		}
		if len(r.workers) > 1 && r.failed == nil {
			for _, t := range r.tasks {
				if t.completed || len(t.active) != 1 || t.active[0].speculative {
					continue
				}
				if now.Sub(t.active[0].start) < threshold {
					continue
				}
				if w := r.pickLocked(t.active[0].worker); w != nil {
					specs = append(specs, spec{t: t, w: w})
					r.cm.SpeculativeLaunched++
				}
			}
		}
		r.mu.Unlock()
		for _, s := range specs {
			c.cfg.Log.Info("speculating partition",
				"plan", r.id, "trace", r.traceID, "partition", s.t.part, "worker", s.w.id)
			c.dispatch(r, s.t, s.w, true)
		}
	}
}

// broadcastPlanDone tells every plan recipient to free the plan's state
// and drop its queued tasks.
func (c *Coordinator) broadcastPlanDone(r *run) {
	frame := appendFrame(msgPlanDone, encodePlanDone(r.id))
	for _, w := range r.workers {
		if !w.dead.Load() {
			go w.send(frame)
		}
	}
}

// handleSpans stitches a worker's finished task spans into the run's
// trace. Workers send spans before the matching result on the same
// connection, so the run is still registered when they arrive.
func (c *Coordinator) handleSpans(w *remote, payload []byte) {
	m, err := decodeSpans(payload)
	if err != nil {
		c.dropWorker(w, err)
		return
	}
	c.mu.Lock()
	r := c.runs[m.plan]
	c.mu.Unlock()
	if r == nil || r.tr == nil {
		return // plan finished, or an untraced run
	}
	r.tr.AddSpans(m.spans)
}

// accumulate folds a finished run's counters into the lifetime stats.
func (c *Coordinator) accumulate(r *run) {
	r.mu.Lock()
	cm := r.cm
	r.mu.Unlock()
	c.stTasks.Add(cm.Tasks)
	c.stRetries.Add(cm.Retries)
	c.stSpecLaunch.Add(cm.SpeculativeLaunched)
	c.stSpecWins.Add(cm.SpeculativeWins)
	c.stBytesLocal.Add(cm.TaskBytesLocal)
	c.stBytesRemote.Add(cm.TaskBytesRemote)
	c.stBroadcast.Add(cm.BroadcastBytes)
	c.stResultBytes.Add(cm.ResultBytes)
}
