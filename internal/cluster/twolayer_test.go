package cluster

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/twolayer"
)

func clusterRandObjects(rng *rand.Rand, n int, idBase int64, maxExtent float64) []extgeom.Object {
	out := make([]extgeom.Object, n)
	for i := range out {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		r := maxExtent * (0.1 + 0.9*rng.Float64())
		id := idBase + int64(i)
		if rng.Intn(2) == 0 {
			out[i] = extgeom.NewPolyline(id, []geom.Point{
				{X: cx - r, Y: cy - r*rng.Float64()},
				{X: cx + r, Y: cy + r*rng.Float64()},
			})
		} else {
			nv := 3 + rng.Intn(4)
			angles := make([]float64, nv)
			for j := range angles {
				angles[j] = rng.Float64() * 2 * math.Pi
			}
			slices.Sort(angles)
			verts := make([]geom.Point, nv)
			for j, a := range angles {
				verts[j] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
			}
			out[i] = extgeom.NewPolygon(id, verts)
		}
	}
	return out
}

// TestTwoLayerClusterMatchesLocal runs the same non-point join on the
// in-process local engine and on a real coordinator + workers over TCP:
// the KernelTwoLayer description must rebuild an identical kernel in
// the worker processes, and the sorted result sets must be identical.
func TestTwoLayerClusterMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rs := clusterRandObjects(rng, 400, 0, 5)
	ss := clusterRandObjects(rng, 400, 10_000, 5)

	h := startHarness(t, Config{},
		WorkerOptions{Name: "w0", Log: testLogger(t)},
		WorkerOptions{Name: "w1", Log: testLogger(t)},
	)

	for _, pred := range []extgeom.Predicate{extgeom.Intersects, extgeom.Contains, extgeom.WithinDistance} {
		cfg := twolayer.Config{
			R: rs, S: ss, Pred: pred, Eps: 2, Tiles: 6, Workers: 3, Collect: true,
		}
		local, err := twolayer.Join(cfg)
		if err != nil {
			t.Fatalf("local %v: %v", pred, err)
		}
		cfg.Engine = h.coord.Engine()
		remote, err := twolayer.Join(cfg)
		if err != nil {
			t.Fatalf("cluster %v: %v", pred, err)
		}
		sortPairs(local.Pairs)
		sortPairs(remote.Pairs)
		if len(local.Pairs) == 0 {
			t.Fatalf("%v produced no pairs; test data too sparse", pred)
		}
		if !slices.Equal(local.Pairs, remote.Pairs) {
			t.Fatalf("%v: cluster result (%d pairs) differs from local (%d pairs)",
				pred, len(remote.Pairs), len(local.Pairs))
		}
	}
}
