// Package cluster is the real multi-process execution backend of the
// data-parallel engine: a coordinator and N worker processes connected
// over TCP with a length-prefixed binary protocol. Where the local
// engine simulates workers in-process and models shuffle bytes, the
// cluster engine ships the prepared plan (grid, agreements, LPT
// placement) and the partition-bucketed tuples over actual sockets, so
// the replication decisions of the paper drive measured network bytes.
//
// The coordinator owns the prepared partitions (the product of the map +
// shuffle phases) and streams each reduce partition to its owning worker
// as one task. Liveness is tracked with heartbeats: a worker that dies
// or goes silent has its unfinished tasks re-queued on survivors, and
// tasks that run past a straggler threshold are speculatively duplicated
// on a second worker with first-result-wins deduplication — the fault
// model of the MapReduce/Spark lineage the paper's evaluation ran on.
//
// Wire format. Every frame is
//
//	length u32 (type + payload) | type u8 | payload
//
// in little-endian byte order, with tuples and pairs encoded by
// internal/tuple's wire format. The protocol is deliberately dumb:
// no compression, no pipelining windows — measured bytes should map
// one-to-one onto the replication and placement decisions under test.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// protoVersion is bumped on any incompatible frame change.
// v2 added the trace-context (msgTrace) and span-shipping (msgSpans)
// frames that stitch worker-process spans into the coordinator's trace.
// v3 added the columnar task frame (msgTaskCols): a reduce partition
// shipped as kernel-ready slab columns instead of per-record tuples.
const protoVersion = 3

// helloMagic opens the worker → coordinator handshake.
const helloMagic = "SJWK"

// Frame types.
const (
	msgHello     byte = 1  // worker → coordinator: magic, version, name
	msgHeartbeat byte = 2  // worker → coordinator: liveness beacon
	msgPlan      byte = 3  // coordinator → worker: per-execution plan broadcast
	msgTask      byte = 4  // coordinator → worker: one reduce partition's records
	msgResult    byte = 5  // worker → coordinator: one task's join outcome
	msgTaskErr   byte = 6  // worker → coordinator: task execution failed
	msgCancel    byte = 7  // coordinator → worker: drop a task (speculation lost)
	msgPlanDone  byte = 8  // coordinator → worker: plan finished, free its state
	msgTrace     byte = 9  // coordinator → worker: trace context for a plan
	msgSpans     byte = 10 // worker → coordinator: finished spans of one task
	msgTaskCols  byte = 11 // coordinator → worker: one reduce partition as columnar slabs
)

// defaultMaxFrame bounds a single frame; a task carries a whole reduce
// partition, so the cap is generous.
const defaultMaxFrame = 1 << 30

// frame length prefix + type byte.
const frameHeader = 4 + 1

// appendFrame wraps a payload into a frame ready for a single Write.
func appendFrame(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, frameHeader+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, typ)
	return append(buf, payload...)
}

// readFrame reads one frame from r, enforcing the size cap.
func readFrame(r *bufio.Reader, max int) (byte, []byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(head[:]))
	if n < 1 || n > max {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes outside (0, %d]", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// reader is a cursor over a frame payload with typed little-endian reads.
// The ok flag latches false on the first underrun so call sites can
// decode unconditionally and check once.
type reader struct {
	b  []byte
	ok bool
}

func newReader(b []byte) *reader { return &reader{b: b, ok: true} }

func (r *reader) take(n int) []byte {
	if !r.ok || len(r.b) < n {
		r.ok = false
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str16() string {
	n := r.take(2)
	if n == nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(n))))
}

func (r *reader) err(context string) error {
	if r.ok {
		return nil
	}
	return fmt.Errorf("cluster: short %s frame", context)
}

func appendStr16(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}
