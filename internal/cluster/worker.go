package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/twolayer"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs; default "worker".
	Name string
	// Parallel is the number of concurrent task executors; default
	// GOMAXPROCS.
	Parallel int
	// HeartbeatInterval is the liveness beacon period; default 500ms and
	// must stay below the coordinator's miss window.
	HeartbeatInterval time.Duration
	// TaskDelay stalls every task before it runs — a fault-injection and
	// straggler-simulation aid for tests; default 0.
	TaskDelay time.Duration
	// MaxFrame bounds one protocol frame; default 1 GiB.
	MaxFrame int
	// Log receives structured progress events; nil discards them.
	Log *slog.Logger
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = defaultMaxFrame
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return o
}

// workerPlan is the worker-side state of one broadcast plan.
type workerPlan struct {
	eps        float64
	selfFilter bool
	collect    bool
	kernel     dpe.Kernel

	// Trace context, installed by a msgTrace frame following the plan.
	// tr is nil when the coordinator's join is untraced, so task spans
	// cost nothing.
	tr     *obs.Tracer
	parent obs.SpanID
}

// workerTask is one queued task attempt: Keyed record buckets for a
// tuple-form task, or decoded slabs for a columnar one.
type workerTask struct {
	h          taskHeader
	rs, ss     []dpe.Keyed
	colR, colS *colpipe.Slab
}

// workerState is everything the read loop and the executors share.
type workerState struct {
	opt  WorkerOptions
	conn net.Conn
	wmu  sync.Mutex // serialises frame writes (results vs heartbeats)

	mu        sync.Mutex
	plans     map[uint64]*workerPlan
	cancelled map[taskKey]bool
}

type taskKey struct {
	plan uint64
	part uint32
}

func (w *workerState) send(frame []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err := w.conn.Write(frame)
	return err
}

// RunWorker connects to the coordinator at addr and serves tasks until
// ctx is cancelled (returns nil) or the connection breaks (returns the
// read error). One process typically hosts exactly one RunWorker call.
func RunWorker(ctx context.Context, addr string, opt WorkerOptions) error {
	opt = opt.withDefaults()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	w := &workerState{
		opt:       opt,
		conn:      conn,
		plans:     map[uint64]*workerPlan{},
		cancelled: map[taskKey]bool{},
	}
	if err := w.send(appendFrame(msgHello, helloMsg{name: opt.Name}.encode())); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	opt.Log.Info("worker connected", "worker", opt.Name, "coordinator", addr)

	// The context watcher unblocks the read loop by closing the socket.
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stopped:
		}
	}()

	// Heartbeats ride their own ticker so long task queues never starve
	// liveness.
	heartbeat := appendFrame(msgHeartbeat, nil)
	go func() {
		ticker := time.NewTicker(opt.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if w.send(heartbeat) != nil {
					return
				}
			case <-stopped:
				return
			}
		}
	}()

	// Task executors drain a buffered queue so the read loop stays
	// responsive to cancels and new plans while joins run.
	tasks := make(chan workerTask, 1024)
	defer close(tasks)
	for i := 0; i < opt.Parallel; i++ {
		go func() {
			for t := range tasks {
				w.runTask(t)
			}
		}()
	}

	br := bufio.NewReader(conn)
	for {
		typ, payload, err := readFrame(br, opt.MaxFrame)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, io.EOF) {
				// The coordinator closed the connection: a finished sjoin
				// run or a stopping daemon. Normal end of service.
				opt.Log.Info("coordinator closed the connection, exiting", "worker", opt.Name)
				return nil
			}
			return fmt.Errorf("cluster: coordinator connection: %w", err)
		}
		switch typ {
		case msgPlan:
			if err := w.handlePlan(payload); err != nil {
				return err
			}
		case msgTrace:
			if err := w.handleTrace(payload); err != nil {
				return err
			}
		case msgTask:
			h, rs, ss, err := decodeTask(payload)
			if err != nil {
				return err
			}
			select {
			case tasks <- workerTask{h: h, rs: rs, ss: ss}:
			default:
				// Queue full: the coordinator oversubscribed us wildly;
				// refuse rather than deadlock the read loop.
				w.sendTaskErr(h, "worker task queue overflow")
			}
		case msgTaskCols:
			h, rs, ss, err := decodeTaskCols(payload)
			if err != nil {
				return err
			}
			select {
			case tasks <- workerTask{h: h, colR: rs, colS: ss}:
			default:
				w.sendTaskErr(h, "worker task queue overflow")
			}
		case msgCancel:
			m, err := decodeCancel(payload)
			if err != nil {
				return err
			}
			w.mu.Lock()
			w.cancelled[taskKey{m.plan, m.part}] = true
			w.mu.Unlock()
		case msgPlanDone:
			id, err := decodePlanDone(payload)
			if err != nil {
				return err
			}
			w.mu.Lock()
			delete(w.plans, id)
			for k := range w.cancelled {
				if k.plan == id {
					delete(w.cancelled, k)
				}
			}
			w.mu.Unlock()
		default:
			return fmt.Errorf("cluster: unexpected frame type %d from coordinator", typ)
		}
	}
}

// handlePlan installs a broadcast plan, rebuilding its kernel from the
// wire description.
func (w *workerState) handlePlan(payload []byte) error {
	m, err := decodePlan(payload)
	if err != nil {
		return err
	}
	p := &workerPlan{eps: m.eps, selfFilter: m.selfFilter, collect: m.collect}
	switch m.kernel.Kind {
	case dpe.KernelSweep:
		// nil kernel: JoinPartition runs the columnar zero-allocation
		// sweep, so remote workers execute the same fast path as the
		// local engine.
	case dpe.KernelRefPoint:
		g := grid.New(m.kernel.Bounds, m.kernel.GridEps, m.kernel.GridRes)
		p.kernel = pbsm.RefPointKernel(g)
	case dpe.KernelTwoLayer:
		k, err := twolayer.KernelFromDesc(m.kernel)
		if err != nil {
			return fmt.Errorf("cluster: plan %d: %w", m.id, err)
		}
		p.kernel = k.Join
	default:
		return fmt.Errorf("cluster: plan %d carries unknown kernel kind %d", m.id, m.kernel.Kind)
	}
	w.mu.Lock()
	w.plans[m.id] = p
	w.mu.Unlock()
	w.opt.Log.Info("plan installed",
		"worker", w.opt.Name, "plan", m.id, "eps", m.eps, "broadcast_bytes", len(m.broadcast))
	return nil
}

// handleTrace attaches trace context to an installed plan. The worker
// mints its task spans from the coordinator-assigned id base, so the
// stitched trace stays collision-free across processes.
func (w *workerState) handleTrace(payload []byte) error {
	m, err := decodeTrace(payload)
	if err != nil {
		return err
	}
	w.mu.Lock()
	if p := w.plans[m.plan]; p != nil {
		p.tr = obs.NewWithID(obs.TraceID(m.traceID), obs.SpanID(m.idBase))
		p.parent = obs.SpanID(m.parent)
	}
	w.mu.Unlock()
	w.opt.Log.Debug("trace context installed",
		"worker", w.opt.Name, "plan", m.plan, "trace", m.traceID)
	return nil
}

// runTask joins one reduce partition and reports the outcome. Panics are
// converted into task errors so one poisoned partition cannot kill the
// worker.
func (w *workerState) runTask(t workerTask) {
	defer func() {
		if r := recover(); r != nil {
			w.sendTaskErr(t.h, fmt.Sprintf("panic: %v", r))
		}
	}()

	w.mu.Lock()
	plan := w.plans[t.h.plan]
	dropped := w.cancelled[taskKey{t.h.plan, t.h.part}]
	w.mu.Unlock()
	if plan == nil || dropped {
		return // plan finished, or a speculation race this attempt lost
	}
	if w.opt.TaskDelay > 0 {
		time.Sleep(w.opt.TaskDelay)
		// A cancel may have raced the injected stall (a lost speculation):
		// skip the join rather than burn the executor.
		w.mu.Lock()
		dropped = w.cancelled[taskKey{t.h.plan, t.h.part}]
		w.mu.Unlock()
		if dropped {
			return
		}
	}

	start := time.Now()
	sp := plan.tr.Start(plan.parent, obs.SpanTask)
	sp.SetWorker(w.opt.Name).
		SetInt("partition", int64(t.h.part)).
		SetInt("attempt", int64(t.h.attempt))
	var out dpe.PartitionResult
	if t.colR != nil {
		out = dpe.JoinSlabsTraced(t.colR, t.colS, plan.eps, plan.collect, plan.selfFilter, sp)
	} else {
		out = dpe.JoinPartitionTraced(t.rs, t.ss, plan.eps, plan.kernel, plan.collect, plan.selfFilter, sp)
	}
	if plan.tr != nil {
		// Ship the finished spans before the result on the same ordered
		// connection, so the coordinator stitches them while the run is
		// still live.
		if spans := plan.tr.TakeSpans(); len(spans) > 0 {
			w.send(appendFrame(msgSpans, spansMsg{plan: t.h.plan, spans: spans}.encode()))
		}
	}
	m := resultMsg{
		taskHeader: t.h,
		dur:        time.Since(start),
		results:    out.Results,
		checksum:   out.Checksum,
		cost:       out.Cost,
		pairs:      out.Pairs,
	}
	w.send(appendFrame(msgResult, m.encode()))
}

func (w *workerState) sendTaskErr(h taskHeader, msg string) {
	w.send(appendFrame(msgTaskErr, taskErrMsg{taskHeader: h, msg: msg}.encode()))
}
