package colpipe

import (
	"math/rand"
	"slices"
	"testing"

	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/tuple"
)

// randSegs scatters n records across `workers` segments with ranks in
// [0, numRanks), mimicking one reduce partition's map output.
func randSegs(rng *rand.Rand, workers, n, numRanks int, idBase int64) []Seg {
	segs := make([]Seg, workers)
	for i := 0; i < n; i++ {
		w := rng.Intn(workers)
		segs[w].Append(int32(rng.Intn(numRanks)), rng.Float64()*10, rng.Float64()*10, idBase+int64(i), 24)
	}
	return segs
}

type row struct {
	rank int32
	x, y float64
	id   int64
}

func segRows(segs []Seg) []row {
	var out []row
	for w := range segs {
		s := &segs[w]
		for i := range s.Ranks {
			out = append(out, row{s.Ranks[i], s.Xs[i], s.Ys[i], s.IDs[i]})
		}
	}
	return out
}

func slabRows(s *Slab) []row {
	var out []row
	for k := 0; k < s.NumGroups(); k++ {
		lo, hi := s.Group(k)
		for i := lo; i < hi; i++ {
			out = append(out, row{s.Ranks[k], s.Xs[i], s.Ys[i], s.IDs[i]})
		}
	}
	return out
}

func sortRows(rs []row) {
	slices.SortFunc(rs, func(a, b row) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
}

// TestBuildIntoGroupsAndSorts checks the counting sort end to end: the
// slab holds exactly the segment rows, grouped by ascending rank, each
// group sorted by x, with the per-worker row/byte attribution intact.
func TestBuildIntoGroupsAndSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const numRanks = 64
	b := NewBuilder(numRanks)
	var slab Slab
	for trial := 0; trial < 20; trial++ {
		segs := randSegs(rng, 1+rng.Intn(4), rng.Intn(3000), numRanks, int64(trial)<<32)
		b.BuildInto(&slab, segs)

		if !slices.IsSorted(slab.Ranks) {
			t.Fatalf("trial %d: group ranks not ascending: %v", trial, slab.Ranks)
		}
		if len(slab.Starts) != len(slab.Ranks)+1 {
			t.Fatalf("trial %d: %d starts for %d groups", trial, len(slab.Starts), len(slab.Ranks))
		}
		for k := 0; k < slab.NumGroups(); k++ {
			lo, hi := slab.Group(k)
			if lo >= hi {
				t.Fatalf("trial %d: empty group %d", trial, k)
			}
			if !slices.IsSorted(slab.Xs[lo:hi]) {
				t.Fatalf("trial %d: group %d not x-sorted", trial, k)
			}
		}

		want, got := segRows(segs), slabRows(&slab)
		sortRows(want)
		sortRows(got)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: slab rows diverge from segment rows (%d vs %d)",
				trial, len(got), len(want))
		}

		var totalRows int32
		var totalBytes int64
		for w := range segs {
			if slab.WorkerRows[w] != int32(segs[w].Len()) || slab.WorkerBytes[w] != segs[w].Bytes {
				t.Fatalf("trial %d: worker %d attribution %d rows/%d bytes, want %d/%d",
					trial, w, slab.WorkerRows[w], slab.WorkerBytes[w], segs[w].Len(), segs[w].Bytes)
			}
			totalRows += slab.WorkerRows[w]
			totalBytes += segs[w].Bytes
		}
		if int(totalRows) != slab.Rows() || totalBytes != slab.Bytes {
			t.Fatalf("trial %d: totals %d rows/%d bytes, want %d/%d",
				trial, slab.Rows(), slab.Bytes, totalRows, totalBytes)
		}

		// The dense counter array must be all-zero again or the next
		// build silently corrupts group sizes.
		for r, c := range b.counts {
			if c != 0 {
				t.Fatalf("trial %d: counter for rank %d left at %d", trial, r, c)
			}
		}
	}
}

// TestBuildIntoZeroAllocSteadyState: a warm Builder/Slab pair must
// rebuild without allocating — the shuffle's inner loop runs once per
// partition per execute, and its churn was the point of the refactor.
func TestBuildIntoZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const numRanks = 128
	segs := randSegs(rng, 4, 5000, numRanks, 0)
	b := NewBuilder(numRanks)
	var slab Slab
	b.BuildInto(&slab, segs) // warm the slab lanes and sort scratch
	if allocs := testing.AllocsPerRun(50, func() {
		b.BuildInto(&slab, segs)
	}); allocs > 0 {
		t.Errorf("steady-state BuildInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestJoinSlabsDifferential compares JoinSlabs (linear rank merge,
// nested-loop/sweep split) against a brute-force join over all
// same-rank row pairs.
func TestJoinSlabsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const numRanks = 32
	b := NewBuilder(numRanks)
	for trial := 0; trial < 10; trial++ {
		rsegs := randSegs(rng, 3, 800, numRanks, 0)
		ssegs := randSegs(rng, 3, 800, numRanks, 1<<40)
		var rslab, sslab Slab
		b.BuildInto(&rslab, rsegs)
		b.BuildInto(&sslab, ssegs)

		eps := 0.2 + rng.Float64()
		var want []tuple.Pair
		for _, r := range segRows(rsegs) {
			for _, s := range segRows(ssegs) {
				dx, dy := r.x-s.x, r.y-s.y
				if r.rank == s.rank && dx*dx+dy*dy <= eps*eps {
					want = append(want, tuple.Pair{RID: r.id, SID: s.id})
				}
			}
		}

		var got []tuple.Pair
		bufs := colsweep.Get()
		bat := bufs.Batch(func(ps []tuple.Pair) { got = append(got, ps...) }, false)
		cost := JoinSlabs(&rslab, &sslab, eps, bat)
		bat.Flush()
		colsweep.Put(bufs)

		sortPairs(got)
		sortPairs(want)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d eps=%.3f: %d pairs, want %d", trial, eps, len(got), len(want))
		}
		if cost < int64(len(want)) {
			t.Fatalf("trial %d: cost %d below pair count %d", trial, cost, len(want))
		}
	}
}

func sortPairs(ps []tuple.Pair) {
	slices.SortFunc(ps, func(a, b tuple.Pair) int {
		switch {
		case a.RID != b.RID:
			if a.RID < b.RID {
				return -1
			}
			return 1
		case a.SID < b.SID:
			return -1
		case a.SID > b.SID:
			return 1
		}
		return 0
	})
}

// TestCurveRanksBijection: both curve orders are bijections cell →
// [0, nx·ny) for square and rectangular grids.
func TestCurveRanksBijection(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {16, 16}, {5, 3}, {1, 9}, {13, 7}} {
		nx, ny := dims[0], dims[1]
		for name, ranks := range map[string][]int32{
			"morton":  MortonRanks(nx, ny),
			"hilbert": HilbertRanks(nx, ny),
		} {
			if len(ranks) != nx*ny {
				t.Fatalf("%s %dx%d: %d ranks", name, nx, ny, len(ranks))
			}
			seen := make([]bool, nx*ny)
			for cell, r := range ranks {
				if r < 0 || int(r) >= nx*ny || seen[r] {
					t.Fatalf("%s %dx%d: cell %d has invalid/duplicate rank %d", name, nx, ny, cell, r)
				}
				seen[r] = true
			}
		}
	}
}

// TestHilbertAdjacency: on a power-of-two square grid the Hilbert curve
// is a Hamiltonian path — consecutive ranks are grid neighbours. This
// is the locality property the slab ordering buys (Morton takes long
// diagonal jumps and deliberately has no such guarantee).
func TestHilbertAdjacency(t *testing.T) {
	const n = 16
	ranks := HilbertRanks(n, n)
	cellOf := make([]int, n*n)
	for cell, r := range ranks {
		cellOf[r] = cell
	}
	for r := 1; r < n*n; r++ {
		a, b := cellOf[r-1], cellOf[r]
		ax, ay := a%n, a/n
		bx, by := b%n, b/n
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("ranks %d->%d jump from cell (%d,%d) to (%d,%d)", r-1, r, ax, ay, bx, by)
		}
	}
}

// BenchmarkBuildJoinHilbert is the bench-smoke row for the
// Hilbert-ordered slab path: map segments whose ranks follow
// HilbertRanks, counting-sorted into slabs, then joined. One op is one
// reduce partition's shuffle + join.
func BenchmarkBuildJoinHilbert(b *testing.B) {
	const nx, ny = 16, 16
	ranks := HilbertRanks(nx, ny)
	rng := rand.New(rand.NewSource(3))
	mkSegs := func(idBase int64) []Seg {
		segs := make([]Seg, 4)
		for i := 0; i < 20000; i++ {
			x, y := rng.Float64()*float64(nx), rng.Float64()*float64(ny)
			cell := int(y)*nx + int(x)
			segs[rng.Intn(len(segs))].Append(ranks[cell], x, y, idBase+int64(i), 24)
		}
		return segs
	}
	rsegs, ssegs := mkSegs(0), mkSegs(1<<40)
	bl := NewBuilder(nx * ny)
	var rslab, sslab Slab
	var pairs int64
	bufs := colsweep.Get()
	defer colsweep.Put(bufs)
	bat := bufs.Batch(func(ps []tuple.Pair) { pairs += int64(len(ps)) }, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.BuildInto(&rslab, rsegs)
		bl.BuildInto(&sslab, ssegs)
		JoinSlabs(&rslab, &sslab, 0.1, bat)
		bat.Flush()
	}
	_ = pairs
}
