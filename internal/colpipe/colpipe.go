// Package colpipe makes the columnar representation the pipeline's
// native format, not just the kernel's: the map (replicate) phase
// appends points to per-worker, per-partition columnar segments, the
// shuffle counting-sorts those segments into per-partition slabs grouped
// by cell rank with each group x-sorted once at build time, and the
// partition join runs the colsweep kernel directly over group subranges
// of the slab lanes — no []tuple.Tuple materialisation, no per-execute
// hash grouping, no re-sorting.
//
// Layout. A Seg is append-only: one int32 rank lane plus the x/y/id
// lanes, written by a single map worker. A Slab is the shuffle's
// product: the distinct ranks of the partition in ascending order, a
// Starts offset array (group k occupies [Starts[k], Starts[k+1])), and
// the concatenated lanes with every group sorted by x. Halo replicas
// are ordinary rows of the groups they were assigned to — after the
// counting sort a replica is an index range member like any native
// point, not a copied tuple.
//
// Ranks. Groups are keyed by cell rank rather than raw cell id so the
// caller can pick a locality-preserving traversal order: MortonRanks
// and HilbertRanks map a grid's cells onto a Z-order or Hilbert curve,
// making adjacent groups in the slab spatially adjacent in the plane —
// consecutive sweeps touch nearby coordinate ranges, which keeps the
// ε-window scans cache-warm. Any bijection cell → [0, NumRanks) is
// valid; nil means identity (row-major cell order).
package colpipe

import (
	"slices"

	"spatialjoin/internal/colsweep"
)

// insertionSortMax is the group size below which the three-lane
// insertion sort beats the permutation sort.
const insertionSortMax = 24

// nestedLoopCost mirrors dpe's partition join: below this |R|·|S| the
// quadratic scan over the group lanes beats the sweep's window logic.
const nestedLoopCost = 64

// Seg is one map worker's append-only columnar output for one reduce
// partition: a rank lane parallel to the coordinate and id lanes, plus
// the modelled wire bytes of the appended records (the shuffle's byte
// accounting survives the loss of the tuple structs).
type Seg struct {
	Ranks  []int32
	Xs, Ys []float64
	IDs    []int64
	Bytes  int64
}

// Append adds one record to the segment. wireBytes is the record's
// modelled keyed wire size.
func (s *Seg) Append(rank int32, x, y float64, id int64, wireBytes int) {
	s.Ranks = append(s.Ranks, rank)
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
	s.IDs = append(s.IDs, id)
	s.Bytes += int64(wireBytes)
}

// Len returns the number of records in the segment.
func (s *Seg) Len() int { return len(s.Ranks) }

// Grow reserves capacity for at least n more records, so a map worker
// that can estimate its per-partition row count skips most of the
// append-doubling copies.
func (s *Seg) Grow(n int) {
	s.Ranks = slices.Grow(s.Ranks, n)
	s.Xs = slices.Grow(s.Xs, n)
	s.Ys = slices.Grow(s.Ys, n)
	s.IDs = slices.Grow(s.IDs, n)
}

// Reset truncates the segment, keeping capacity.
func (s *Seg) Reset() {
	s.Ranks, s.Xs, s.Ys, s.IDs = s.Ranks[:0], s.Xs[:0], s.Ys[:0], s.IDs[:0]
	s.Bytes = 0
}

// Slab is one reduce partition's kernel-ready columnar input: records
// grouped by ascending rank, each group sorted by x. Group k occupies
// index range [Starts[k], Starts[k+1]) of the lanes. WorkerRows and
// WorkerBytes record, per producing map split, the row count and
// modelled wire bytes — the inputs of the local/remote shuffle-read
// split (partition owner vs producing worker).
type Slab struct {
	Ranks  []int32 // distinct ranks present, ascending
	Starts []int32 // len(Ranks)+1 group offsets
	Xs, Ys []float64
	IDs    []int64
	Bytes  int64 // total modelled keyed wire bytes

	WorkerRows  []int32
	WorkerBytes []int64
}

// Rows returns the total number of records in the slab.
func (s *Slab) Rows() int { return len(s.IDs) }

// NumGroups returns the number of distinct rank groups.
func (s *Slab) NumGroups() int { return len(s.Ranks) }

// Group returns the lane index range of group k.
func (s *Slab) Group(k int) (lo, hi int) {
	return int(s.Starts[k]), int(s.Starts[k+1])
}

// reset truncates the slab for reuse, sizing the per-worker counters.
func (s *Slab) reset(workers int) {
	s.Ranks, s.Starts = s.Ranks[:0], s.Starts[:0]
	s.Xs, s.Ys, s.IDs = s.Xs[:0], s.Ys[:0], s.IDs[:0]
	s.Bytes = 0
	if cap(s.WorkerRows) < workers {
		s.WorkerRows = make([]int32, workers)
		s.WorkerBytes = make([]int64, workers)
	}
	s.WorkerRows = s.WorkerRows[:workers]
	s.WorkerBytes = s.WorkerBytes[:workers]
	for i := range s.WorkerRows {
		s.WorkerRows[i] = 0
		s.WorkerBytes[i] = 0
	}
}

// Builder holds the reusable scratch of the counting sort: a dense
// per-rank counter array (zeroed between builds by walking only the
// ranks that were touched) and the permutation-sort scratch. One
// Builder serves any number of sequential BuildInto calls; it must not
// be shared across goroutines.
type Builder struct {
	counts []int32 // dense, len NumRanks; all-zero between builds
	perm   []int32
	tmpF   []float64
	tmpI   []int64
}

// NewBuilder returns a Builder for slabs whose ranks lie in
// [0, numRanks).
func NewBuilder(numRanks int) *Builder {
	return &Builder{counts: make([]int32, numRanks)}
}

// BuildInto counting-sorts the segments of one reduce partition into
// dst: records are grouped by rank, groups ordered by ascending rank,
// and each group sorted by x. dst's slices are reused across calls, so
// a warm Builder/Slab pair builds with zero allocations in steady
// state. Segment index w is taken to be the producing map split for
// the per-worker byte accounting.
func (b *Builder) BuildInto(dst *Slab, segs []Seg) {
	dst.reset(len(segs))

	// Pass 1: count rows per rank, collecting each rank on first touch.
	total := 0
	for w := range segs {
		seg := &segs[w]
		for _, r := range seg.Ranks {
			if b.counts[r] == 0 {
				dst.Ranks = append(dst.Ranks, r)
			}
			b.counts[r]++
		}
		total += seg.Len()
		dst.WorkerRows[w] = int32(seg.Len())
		dst.WorkerBytes[w] = seg.Bytes
		dst.Bytes += seg.Bytes
	}
	slices.Sort(dst.Ranks)

	// Prefix-sum the group offsets; the counter array doubles as the
	// per-rank write cursor during the scatter.
	dst.Starts = slices.Grow(dst.Starts, len(dst.Ranks)+1)
	cum := int32(0)
	for _, r := range dst.Ranks {
		dst.Starts = append(dst.Starts, cum)
		n := b.counts[r]
		b.counts[r] = cum
		cum += n
	}
	dst.Starts = append(dst.Starts, cum)

	// Pass 2: scatter the segment rows into their groups.
	dst.Xs = slices.Grow(dst.Xs, total)[:total]
	dst.Ys = slices.Grow(dst.Ys, total)[:total]
	dst.IDs = slices.Grow(dst.IDs, total)[:total]
	for w := range segs {
		seg := &segs[w]
		for i, r := range seg.Ranks {
			pos := b.counts[r]
			b.counts[r]++
			dst.Xs[pos] = seg.Xs[i]
			dst.Ys[pos] = seg.Ys[i]
			dst.IDs[pos] = seg.IDs[i]
		}
	}

	// Restore the all-zero counter invariant by walking only the ranks
	// this build touched.
	for _, r := range dst.Ranks {
		b.counts[r] = 0
	}

	// Sort each group by x, once — every later Execute sweeps the
	// subranges as-is.
	for k := 0; k < len(dst.Ranks); k++ {
		lo, hi := int(dst.Starts[k]), int(dst.Starts[k+1])
		b.sortRange(dst, lo, hi)
	}
}

// sortRange sorts the slab rows [lo, hi) by ascending x.
func (b *Builder) sortRange(dst *Slab, lo, hi int) {
	n := hi - lo
	if n < 2 {
		return
	}
	xs, ys, ids := dst.Xs, dst.Ys, dst.IDs
	if n <= insertionSortMax {
		for i := lo + 1; i < hi; i++ {
			x, y, id := xs[i], ys[i], ids[i]
			j := i
			for j > lo && xs[j-1] > x {
				xs[j], ys[j], ids[j] = xs[j-1], ys[j-1], ids[j-1]
				j--
			}
			xs[j], ys[j], ids[j] = x, y, id
		}
		return
	}
	// Permutation sort with a single gather per lane, like
	// colsweep.Cols.SortByX but over a subrange.
	perm := b.perm[:0]
	perm = slices.Grow(perm, n)
	for i := 0; i < n; i++ {
		perm = append(perm, int32(i))
	}
	sub := xs[lo:hi]
	slices.SortFunc(perm, func(a, c int32) int {
		if sub[a] < sub[c] {
			return -1
		}
		if sub[a] > sub[c] {
			return 1
		}
		return 0
	})
	b.perm = perm
	b.tmpF = append(b.tmpF[:0], xs[lo:hi]...)
	b.tmpI = append(b.tmpI[:0], ids[lo:hi]...)
	for i, p := range perm {
		xs[lo+i] = b.tmpF[p]
		ids[lo+i] = b.tmpI[p]
	}
	b.tmpF = append(b.tmpF[:0], ys[lo:hi]...)
	for i, p := range perm {
		ys[lo+i] = b.tmpF[p]
	}
}

// JoinSlabs joins the matching rank groups of two slabs, adding every
// pair within eps to out and returning the partition cost
// Σ |R_group|·|S_group| over the matched groups. Both slabs' rank
// lists are ascending, so matching is a linear merge; tiny groups take
// the quadratic lane scan, larger ones the x-sorted ε-window sweep
// with its true-hit/candidate split. Zero allocations.
func JoinSlabs(r, s *Slab, eps float64, out *colsweep.Batch) (cost int64) {
	eps2 := eps * eps
	ri, si := 0, 0
	for ri < len(r.Ranks) && si < len(s.Ranks) {
		switch {
		case r.Ranks[ri] < s.Ranks[si]:
			ri++
		case r.Ranks[ri] > s.Ranks[si]:
			si++
		default:
			rlo, rhi := int(r.Starts[ri]), int(r.Starts[ri+1])
			slo, shi := int(s.Starts[si]), int(s.Starts[si+1])
			nr, ns := rhi-rlo, shi-slo
			cost += int64(nr) * int64(ns)
			if nr*ns <= nestedLoopCost {
				for i := rlo; i < rhi; i++ {
					x, y, id := r.Xs[i], r.Ys[i], r.IDs[i]
					for j := slo; j < shi; j++ {
						dx := x - s.Xs[j]
						dy := y - s.Ys[j]
						if dx*dx+dy*dy <= eps2 {
							out.Add(id, s.IDs[j])
						}
					}
				}
			} else {
				rc := colsweep.Cols{Xs: r.Xs[rlo:rhi], Ys: r.Ys[rlo:rhi], IDs: r.IDs[rlo:rhi]}
				sc := colsweep.Cols{Xs: s.Xs[slo:shi], Ys: s.Ys[slo:shi], IDs: s.IDs[slo:shi]}
				colsweep.SweepSorted(&rc, &sc, eps, out)
			}
			ri++
			si++
		}
	}
	return cost
}

// MortonRanks returns the dense rank of every cell of an nx×ny grid
// along the Z-order (Morton) curve: ranks[cell] ∈ [0, nx·ny), with
// rank order following the curve. Cell ids are row-major (cy·nx+cx).
func MortonRanks(nx, ny int) []int32 {
	return curveRanks(nx, ny, func(cx, cy uint32) uint64 {
		return part1by1(cx) | part1by1(cy)<<1
	})
}

// HilbertRanks is MortonRanks along the Hilbert curve, which preserves
// locality strictly better than Z-order (no long diagonal jumps).
func HilbertRanks(nx, ny int) []int32 {
	side := uint32(1)
	for int(side) < max(nx, ny) {
		side <<= 1
	}
	return curveRanks(nx, ny, func(cx, cy uint32) uint64 {
		return hilbertD(side, cx, cy)
	})
}

// curveRanks densifies an arbitrary space-filling-curve key into ranks
// by argsorting the cells along the curve.
func curveRanks(nx, ny int, key func(cx, cy uint32) uint64) []int32 {
	n := nx * ny
	keys := make([]uint64, n)
	order := make([]int32, n)
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			id := cy*nx + cx
			keys[id] = key(uint32(cx), uint32(cy))
			order[id] = int32(id)
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		ka, kb := keys[a], keys[b]
		if ka < kb {
			return -1
		}
		if ka > kb {
			return 1
		}
		return 0
	})
	ranks := make([]int32, n)
	for rank, cell := range order {
		ranks[cell] = int32(rank)
	}
	return ranks
}

// part1by1 spreads the low 32 bits of v to the even bit positions.
func part1by1(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// hilbertD converts (x, y) on a side×side grid (side a power of two)
// to its distance along the Hilbert curve.
func hilbertD(side, x, y uint32) uint64 {
	var d uint64
	for s := side / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
