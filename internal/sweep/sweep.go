// Package sweep implements the local (per-partition) ε-distance join
// algorithms: a plane-sweep join in the tradition of PBSM's partition-level
// join, and a quadratic nested-loop join used as a correctness oracle in
// tests and for tiny partitions.
//
// Both algorithms report every pair (r, s) with d(r, s) <= eps exactly once
// through an Emit callback, so callers choose between counting, collecting,
// or streaming results without the join materialising anything itself.
package sweep

import (
	"slices"
	"sort"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Emit receives one verified join result pair.
type Emit func(r, s tuple.Tuple)

// NestedLoop computes the ε-distance join of rs and ss by comparing all
// pairs. It is O(|R|·|S|) and intended as an oracle and for very small
// inputs, where its lack of sorting makes it the fastest choice.
func NestedLoop(rs, ss []tuple.Tuple, eps float64, emit Emit) {
	eps2 := eps * eps
	for _, r := range rs {
		for _, s := range ss {
			if r.Pt.SqDist(s.Pt) <= eps2 {
				emit(r, s)
			}
		}
	}
}

// nestedLoopThreshold is the partition size below which PlaneSweep falls
// back to NestedLoop: sorting dominates for tiny inputs.
const nestedLoopThreshold = 8

// PlaneSweep computes the ε-distance join of rs and ss with a plane sweep
// along the x axis. Both inputs are sorted by x (copies are made; the
// caller's slices are not reordered), then for every r the S points with
// |s.x - r.x| <= eps are examined. Expected cost is
// O(n log n + candidates), where candidates is the number of pairs within
// eps on the x axis alone.
func PlaneSweep(rs, ss []tuple.Tuple, eps float64, emit Emit) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	if len(rs)*len(ss) <= nestedLoopThreshold*nestedLoopThreshold {
		NestedLoop(rs, ss, eps, emit)
		return
	}
	r := sortedByX(rs)
	s := sortedByX(ss)
	sweepSorted(r, s, eps, emit)
}

// PlaneSweepPreSorted is PlaneSweep for inputs already sorted by ascending
// x coordinate. It performs no allocation or sorting.
func PlaneSweepPreSorted(rs, ss []tuple.Tuple, eps float64, emit Emit) {
	sweepSorted(rs, ss, eps, emit)
}

// SortByX sorts ts in place by ascending x coordinate. It is exported so
// partitions can be pre-sorted once and joined with PlaneSweepPreSorted.
func SortByX(ts []tuple.Tuple) {
	slices.SortFunc(ts, func(a, b tuple.Tuple) int {
		if a.Pt.X < b.Pt.X {
			return -1
		}
		if a.Pt.X > b.Pt.X {
			return 1
		}
		return 0
	})
}

// PlaneSweepY is PlaneSweep sweeping along the y axis instead of x.
func PlaneSweepY(rs, ss []tuple.Tuple, eps float64, emit Emit) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	if len(rs)*len(ss) <= nestedLoopThreshold*nestedLoopThreshold {
		NestedLoop(rs, ss, eps, emit)
		return
	}
	flip := func(ts []tuple.Tuple) []tuple.Tuple {
		out := make([]tuple.Tuple, len(ts))
		for i, t := range ts {
			t.Pt.X, t.Pt.Y = t.Pt.Y, t.Pt.X
			out[i] = t
		}
		return out
	}
	r := flip(rs)
	s := flip(ss)
	SortByX(r)
	SortByX(s)
	// Flip back inside the emit so callers observe original coordinates.
	sweepSorted(r, s, eps, func(rt, st tuple.Tuple) {
		rt.Pt.X, rt.Pt.Y = rt.Pt.Y, rt.Pt.X
		st.Pt.X, st.Pt.Y = st.Pt.Y, st.Pt.X
		emit(rt, st)
	})
}

// PlaneSweepBestAxis sweeps along whichever axis spreads the partition's
// points more — the per-partition sweep-axis tuning of Tsitsigkos et al.
// (SIGSPATIAL '19). A wider sweep axis means fewer points per ε-window
// and therefore fewer candidate pairs to refine. Tiny inputs skip the
// spread scan entirely and go straight to the nested loop, which is where
// both sweeps would end up anyway.
func PlaneSweepBestAxis(rs, ss []tuple.Tuple, eps float64, emit Emit) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	if len(rs)*len(ss) <= nestedLoopThreshold*nestedLoopThreshold {
		NestedLoop(rs, ss, eps, emit)
		return
	}
	sx, sy := spreadXY(rs, ss)
	if sx >= sy {
		PlaneSweep(rs, ss, eps, emit)
		return
	}
	PlaneSweepY(rs, ss, eps, emit)
}

// spreadXY returns the x and y extents of the union of rs and ss,
// computed with one min/max pass over each input instead of one pass per
// axis per input.
func spreadXY(rs, ss []tuple.Tuple) (sx, sy float64) {
	var first tuple.Tuple
	if len(rs) > 0 {
		first = rs[0]
	} else if len(ss) > 0 {
		first = ss[0]
	} else {
		return 0, 0
	}
	minX, maxX := first.Pt.X, first.Pt.X
	minY, maxY := first.Pt.Y, first.Pt.Y
	scan := func(ts []tuple.Tuple) {
		for i := range ts {
			x, y := ts[i].Pt.X, ts[i].Pt.Y
			if x < minX {
				minX = x
			} else if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			} else if y > maxY {
				maxY = y
			}
		}
	}
	scan(rs)
	scan(ss)
	return maxX - minX, maxY - minY
}

func sortedByX(ts []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	copy(out, ts)
	SortByX(out)
	return out
}

// sweepSorted is the sweep kernel: r and s must be sorted by x.
func sweepSorted(r, s []tuple.Tuple, eps float64, emit Emit) {
	eps2 := eps * eps
	start := 0 // first s index whose x may still be within eps of the current r
	for i := range r {
		rx := r[i].Pt.X
		for start < len(s) && s[start].Pt.X < rx-eps {
			start++
		}
		if start == len(s) {
			return
		}
		for j := start; j < len(s) && s[j].Pt.X <= rx+eps; j++ {
			dy := r[i].Pt.Y - s[j].Pt.Y
			if dy > eps || dy < -eps {
				continue
			}
			if r[i].Pt.SqDist(s[j].Pt) <= eps2 {
				emit(r[i], s[j])
			}
		}
	}
}

// ProbeSorted reports every tuple of sorted — which must be in ascending
// x order — within eps of p. It is the incremental entry point of the
// streaming join engine: one arriving point is probed against a cell's
// maintained sorted slab in O(log n + window) without re-running a full
// sweep. Matches at distance exactly eps are reported (closed predicate,
// like every join in this package).
func ProbeSorted(sorted []tuple.Tuple, p geom.Point, eps float64, emit func(tuple.Tuple)) {
	if len(sorted) == 0 {
		return
	}
	eps2 := eps * eps
	lo := p.X - eps
	start := sort.Search(len(sorted), func(i int) bool { return sorted[i].Pt.X >= lo })
	for i := start; i < len(sorted) && sorted[i].Pt.X <= p.X+eps; i++ {
		dy := p.Y - sorted[i].Pt.Y
		if dy > eps || dy < -eps {
			continue
		}
		if p.SqDist(sorted[i].Pt) <= eps2 {
			emit(sorted[i])
		}
	}
}

// Counter is an Emit sink that counts results and maintains an
// order-independent checksum of the result pair identifiers, so two join
// algorithms can be compared cheaply without materialising results.
type Counter struct {
	N        int64
	Checksum uint64
}

// Emit records one result pair.
func (c *Counter) Emit(r, s tuple.Tuple) {
	c.N++
	c.Checksum += pairHash(r.ID, s.ID)
}

// EmitPair records one result pair given only its ids — the allocation-
// free sink of the columnar kernel's batched emission.
func (c *Counter) EmitPair(p tuple.Pair) {
	c.N++
	c.Checksum += pairHash(p.RID, p.SID)
}

// pairHash mixes a pair of ids into a 64-bit value. Summing hashes is
// order-independent, and the avalanche mixing makes colliding multisets of
// pairs overwhelmingly unlikely.
func pairHash(a, b int64) uint64 {
	x := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Collector is an Emit sink that materialises result pairs.
type Collector struct {
	Pairs []tuple.Pair
}

// Emit appends one result pair.
func (c *Collector) Emit(r, s tuple.Tuple) {
	c.Pairs = append(c.Pairs, tuple.Pair{RID: r.ID, SID: s.ID})
}
