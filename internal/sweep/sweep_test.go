package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func mkTuples(pts []geom.Point, base int64) []tuple.Tuple {
	return tuple.FromPoints(pts, base)
}

func pairsOf(rs, ss []tuple.Tuple, eps float64, join func(r, s []tuple.Tuple, eps float64, emit Emit)) []tuple.Pair {
	var c Collector
	join(rs, ss, eps, c.Emit)
	sort.Slice(c.Pairs, func(i, j int) bool {
		if c.Pairs[i].RID != c.Pairs[j].RID {
			return c.Pairs[i].RID < c.Pairs[j].RID
		}
		return c.Pairs[i].SID < c.Pairs[j].SID
	})
	return c.Pairs
}

func TestNestedLoopBasic(t *testing.T) {
	rs := mkTuples([]geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}, 0)
	ss := mkTuples([]geom.Point{{X: 0.5, Y: 0}, {X: 100, Y: 100}}, 1000)
	got := pairsOf(rs, ss, 1.0, NestedLoop)
	if len(got) != 1 || got[0] != (tuple.Pair{RID: 0, SID: 1000}) {
		t.Fatalf("got %v, want [{0 1000}]", got)
	}
}

func TestExactEpsilonIncluded(t *testing.T) {
	rs := mkTuples([]geom.Point{{X: 0, Y: 0}}, 0)
	ss := mkTuples([]geom.Point{{X: 3, Y: 4}}, 1)
	for _, join := range []func(r, s []tuple.Tuple, eps float64, emit Emit){NestedLoop, PlaneSweep} {
		if got := pairsOf(rs, ss, 5.0, join); len(got) != 1 {
			t.Errorf("pair at distance exactly eps must be reported; got %v", got)
		}
		if got := pairsOf(rs, ss, 4.999999, join); len(got) != 0 {
			t.Errorf("pair above eps must not be reported; got %v", got)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	ss := mkTuples([]geom.Point{{X: 0, Y: 0}}, 0)
	var c Counter
	PlaneSweep(nil, ss, 1, c.Emit)
	PlaneSweep(ss, nil, 1, c.Emit)
	NestedLoop(nil, nil, 1, c.Emit)
	if c.N != 0 {
		t.Fatalf("joins with an empty side must be empty, got %d", c.N)
	}
}

func randomTuples(rng *rand.Rand, n int, extent float64, base int64) []tuple.Tuple {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return mkTuples(pts, base)
}

func TestPlaneSweepMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nr, ns := rng.Intn(200), rng.Intn(200)
		eps := rng.Float64() * 3
		rs := randomTuples(rng, nr, 20, 0)
		ss := randomTuples(rng, ns, 20, 1_000_000)
		want := pairsOf(rs, ss, eps, NestedLoop)
		got := pairsOf(rs, ss, eps, PlaneSweep)
		if len(got) != len(want) {
			t.Fatalf("trial %d: plane sweep found %d pairs, oracle %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pair %d mismatch: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPlaneSweepDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := randomTuples(rng, 100, 10, 0)
	ss := randomTuples(rng, 100, 10, 1000)
	rsCopy := append([]tuple.Tuple(nil), rs...)
	ssCopy := append([]tuple.Tuple(nil), ss...)
	var c Counter
	PlaneSweep(rs, ss, 0.5, c.Emit)
	for i := range rs {
		if rs[i].ID != rsCopy[i].ID || rs[i].Pt != rsCopy[i].Pt {
			t.Fatal("PlaneSweep reordered its R input")
		}
	}
	for i := range ss {
		if ss[i].ID != ssCopy[i].ID || ss[i].Pt != ssCopy[i].Pt {
			t.Fatal("PlaneSweep reordered its S input")
		}
	}
}

func TestPlaneSweepPreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := randomTuples(rng, 300, 10, 0)
	ss := randomTuples(rng, 300, 10, 1000)
	want := pairsOf(rs, ss, 0.7, NestedLoop)

	SortByX(rs)
	SortByX(ss)
	got := pairsOf(rs, ss, 0.7, PlaneSweepPreSorted)
	if len(got) != len(want) {
		t.Fatalf("pre-sorted sweep found %d pairs, oracle %d", len(got), len(want))
	}
}

func TestCounterChecksumOrderIndependent(t *testing.T) {
	rs := mkTuples([]geom.Point{{X: 0, Y: 0}, {X: 0.1, Y: 0}}, 0)
	ss := mkTuples([]geom.Point{{X: 0, Y: 0.1}, {X: 0.1, Y: 0.1}}, 100)
	var a, b Counter
	NestedLoop(rs, ss, 1, a.Emit)
	// Same pairs, reversed iteration order.
	rev := []tuple.Tuple{rs[1], rs[0]}
	NestedLoop(rev, ss, 1, b.Emit)
	if a.N != b.N || a.Checksum != b.Checksum {
		t.Fatalf("checksum must be order independent: %d/%x vs %d/%x", a.N, a.Checksum, b.N, b.Checksum)
	}
}

func TestCounterChecksumDistinguishesPairs(t *testing.T) {
	var a, b Counter
	r0 := tuple.Tuple{ID: 1}
	s0 := tuple.Tuple{ID: 2}
	a.Emit(r0, s0)
	b.Emit(s0, r0) // swapped roles -> different pair
	if a.Checksum == b.Checksum {
		t.Fatal("checksum should distinguish (1,2) from (2,1)")
	}
}

func TestSweepSelfJoinStyle(t *testing.T) {
	// Joining a set with itself must report n + 2*closePairs results
	// (each point matches itself, and both orientations of close pairs).
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 10, Y: 10}}
	ts := mkTuples(pts, 0)
	var c Counter
	PlaneSweep(ts, ts, 1, c.Emit)
	if c.N != 5 {
		t.Fatalf("self join count = %d, want 5", c.N)
	}
}

func TestQuickSweepAgainstOracle(t *testing.T) {
	type seedCase struct {
		Seed int64
	}
	f := func(sc seedCase) bool {
		rng := rand.New(rand.NewSource(sc.Seed))
		rs := randomTuples(rng, 30+rng.Intn(60), 5, 0)
		ss := randomTuples(rng, 30+rng.Intn(60), 5, 1000)
		eps := 0.1 + rng.Float64()
		var want, got Counter
		NestedLoop(rs, ss, eps, want.Emit)
		PlaneSweep(rs, ss, eps, got.Emit)
		return want.N == got.N && want.Checksum == got.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPlaneSweep10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := randomTuples(rng, 10_000, 100, 0)
	ss := randomTuples(rng, 10_000, 100, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Counter
		PlaneSweep(rs, ss, 0.5, c.Emit)
	}
}

func BenchmarkNestedLoop1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := randomTuples(rng, 1_000, 100, 0)
	ss := randomTuples(rng, 1_000, 100, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Counter
		NestedLoop(rs, ss, 0.5, c.Emit)
	}
}

func TestPlaneSweepYMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		rs := randomTuples(rng, 50+rng.Intn(200), 15, 0)
		ss := randomTuples(rng, 50+rng.Intn(200), 15, 1_000_000)
		eps := 0.2 + rng.Float64()*2
		var want, got Counter
		NestedLoop(rs, ss, eps, want.Emit)
		PlaneSweepY(rs, ss, eps, got.Emit)
		if want.N != got.N || want.Checksum != got.Checksum {
			t.Fatalf("trial %d: sweep-y %d/%x, oracle %d/%x", trial, got.N, got.Checksum, want.N, want.Checksum)
		}
	}
}

func TestPlaneSweepYEmitsOriginalCoordinates(t *testing.T) {
	rs := mkTuples([]geom.Point{{X: 1, Y: 2}}, 0)
	// Enough S points to exceed the nested-loop fast path.
	var spts []geom.Point
	for i := 0; i < 100; i++ {
		spts = append(spts, geom.Point{X: 1, Y: 2.1})
	}
	ss := mkTuples(spts, 1000)
	PlaneSweepY(rs, ss, 1, func(r, s tuple.Tuple) {
		if r.Pt != (geom.Point{X: 1, Y: 2}) || s.Pt != (geom.Point{X: 1, Y: 2.1}) {
			t.Fatalf("coordinates flipped in emit: %v, %v", r.Pt, s.Pt)
		}
	})
}

func TestPlaneSweepBestAxisMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Vertically elongated partition: best axis is y.
	mk := func(n int, base int64) []tuple.Tuple {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64() * 40}
		}
		return mkTuples(pts, base)
	}
	rs := mk(400, 0)
	ss := mk(400, 1_000_000)
	var want, got Counter
	NestedLoop(rs, ss, 0.5, want.Emit)
	PlaneSweepBestAxis(rs, ss, 0.5, got.Emit)
	if want.N != got.N || want.Checksum != got.Checksum {
		t.Fatalf("best-axis %d/%x, oracle %d/%x", got.N, got.Checksum, want.N, want.Checksum)
	}
	if sx, sy := spreadXY(rs, ss); sy <= sx {
		t.Fatal("test workload should be y-elongated")
	}
}

func TestSpreadXYSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		rs := randomTuples(rng, rng.Intn(50), 30, 0)
		ss := randomTuples(rng, 1+rng.Intn(50), 30, 1000)
		sx, sy := spreadXY(rs, ss)
		// Oracle: per-axis min/max over the concatenation.
		all := append(append([]tuple.Tuple(nil), rs...), ss...)
		minX, maxX := all[0].Pt.X, all[0].Pt.X
		minY, maxY := all[0].Pt.Y, all[0].Pt.Y
		for _, p := range all {
			minX = min(minX, p.Pt.X)
			maxX = max(maxX, p.Pt.X)
			minY = min(minY, p.Pt.Y)
			maxY = max(maxY, p.Pt.Y)
		}
		if sx != maxX-minX || sy != maxY-minY {
			t.Fatalf("trial %d: spreadXY = (%v, %v), want (%v, %v)", trial, sx, sy, maxX-minX, maxY-minY)
		}
	}
}

func TestPlaneSweepBestAxisTinyInputs(t *testing.T) {
	// Below the nested-loop threshold the spread scan is skipped entirely;
	// results must still match the oracle, including the empty sides.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		rs := randomTuples(rng, rng.Intn(9), 2, 0)
		ss := randomTuples(rng, rng.Intn(9), 2, 1000)
		var want, got Counter
		NestedLoop(rs, ss, 0.8, want.Emit)
		PlaneSweepBestAxis(rs, ss, 0.8, got.Emit)
		if want.N != got.N || want.Checksum != got.Checksum {
			t.Fatalf("trial %d: tiny best-axis %d/%x, oracle %d/%x", trial, got.N, got.Checksum, want.N, want.Checksum)
		}
	}
}

func TestPlaneSweepPreSortedZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	rs := randomTuples(rng, 2000, 50, 0)
	ss := randomTuples(rng, 2000, 50, 1_000_000)
	SortByX(rs)
	SortByX(ss)
	var c Counter
	emit := c.Emit // bind the method value once, outside the measurement
	allocs := testing.AllocsPerRun(10, func() {
		PlaneSweepPreSorted(rs, ss, 0.5, emit)
	})
	if allocs != 0 {
		t.Fatalf("PlaneSweepPreSorted allocated %v times per join, want 0", allocs)
	}
	if c.N == 0 {
		t.Fatal("workload produced no pairs; the alloc assertion is vacuous")
	}
}

func BenchmarkPlaneSweepWrongAxis(b *testing.B) {
	// Horizontal strip: sweeping x is right, y is wrong.
	rng := rand.New(rand.NewSource(2))
	mk := func(n int, base int64) []tuple.Tuple {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 200, Y: rng.Float64()}
		}
		return mkTuples(pts, base)
	}
	rs := mk(5000, 0)
	ss := mk(5000, 1_000_000)
	b.Run("best", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c Counter
			PlaneSweepBestAxis(rs, ss, 0.3, c.Emit)
		}
	})
	b.Run("wrong", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c Counter
			PlaneSweepY(rs, ss, 0.3, c.Emit)
		}
	})
}
