package spatialjoin_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startSjoind launches the daemon on a random port and returns its base
// URL plus the running command (for signalling). The daemon prints its
// listen address first, which is how the port is discovered.
func startSjoind(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Log lines (e.g. the durable-store recovery summary) may precede
	// the banner; skip until it shows up.
	rd := bufio.NewReader(stdout)
	const prefix = "sjoind listening on "
	var line string
	for i := 0; ; i++ {
		line, err = rd.ReadString('\n')
		if err != nil {
			cmd.Process.Kill()
			t.Fatalf("reading sjoind banner: %v (got %q)", err, line)
		}
		if strings.HasPrefix(line, prefix) {
			break
		}
		if i > 50 {
			cmd.Process.Kill()
			t.Fatalf("no banner after %d lines; last: %q", i, line)
		}
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	// Drain the rest of stdout so the daemon never blocks on a full pipe.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := stdout.Read(buf); err != nil {
				return
			}
		}
	}()
	return "http://" + addr, cmd
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestSjoindEndToEnd runs the daemon as a real process: uploads two
// generated datasets, runs the same join twice (the second must hit the
// plan cache with an identical checksum), then verifies that SIGTERM
// drains an in-flight join before the process exits cleanly.
func TestSjoindEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	base, cmd := startSjoind(t, bins["sjoind"])
	defer cmd.Process.Kill()

	for _, q := range []string{
		"name=r&generate=gaussian&n=20000&seed=1",
		"name=s&generate=uniform&n=20000&seed=2",
	} {
		if code, m := postJSON(t, base+"/v1/datasets?"+q, ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d, %v", q, code, m)
		}
	}

	join := `{"r":"r","s":"s","eps":0.4,"algorithm":"lpib"}`
	code, first := postJSON(t, base+"/v1/join", join)
	if code != http.StatusOK || first["plan_cache"] != "miss" {
		t.Fatalf("first join: status %d, %v", code, first)
	}
	code, second := postJSON(t, base+"/v1/join", join)
	if code != http.StatusOK || second["plan_cache"] != "hit" {
		t.Fatalf("second join: status %d, %v", code, second)
	}
	if first["checksum"] != second["checksum"] || first["results"] != second["results"] {
		t.Fatalf("cache hit changed the answer: %v vs %v", first, second)
	}

	// Graceful shutdown: start a join heavy enough to still be in flight
	// when SIGTERM lands; the response must complete and match, and the
	// daemon must exit 0.
	if code, m := postJSON(t, base+"/v1/datasets?name=big&generate=gaussian&n=400000&seed=3", ""); code != http.StatusCreated {
		t.Fatalf("upload big: status %d, %v", code, m)
	}
	type result struct {
		code int
		body map[string]any
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/join/count", "application/json",
			strings.NewReader(`{"r":"big","s":"big","eps":0.3,"algorithm":"lpib"}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var m map[string]any
		err = json.NewDecoder(resp.Body).Decode(&m)
		inflight <- result{code: resp.StatusCode, body: m, err: err}
	}()
	time.Sleep(200 * time.Millisecond) // let the join get admitted
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-inflight
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight join during drain: %v (status %d, %v)", r.err, r.code, r.body)
	}
	if n, ok := r.body["results"].(float64); !ok || n <= 0 {
		t.Fatalf("drained join returned %v", r.body["results"])
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sjoind exited non-zero after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sjoind did not exit after SIGTERM")
	}

	// The daemon is gone: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}

// TestSjoindRejectsBadFlags checks the daemon fails fast on a bad listen
// address instead of starting half-configured.
func TestSjoindRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	out, err := exec.Command(bins["sjoind"], "-addr", "256.256.256.256:99999").CombinedOutput()
	if err == nil {
		t.Fatalf("bad -addr accepted: %s", out)
	}
	if !strings.Contains(string(out), "level=ERROR") || !strings.Contains(string(out), "listen failed") {
		t.Fatalf("unexpected error output: %s", out)
	}
}
